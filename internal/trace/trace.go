// Package trace defines the cache-filtered DRAM access stream that flows
// between the components of the M5 reproduction. It plays the role the
// Pin+Ramulator trace collection plays in §7.1 of the paper: a sequence of
// time-stamped physical addresses issued to (CXL or DDR) DRAM.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"m5/internal/mem"
)

// Access is one DRAM access: a 64B-word-granularity read or write at a
// simulated time (nanoseconds since the start of the run).
type Access struct {
	// Time is the simulation timestamp in nanoseconds.
	Time uint64
	// Addr is the physical byte address accessed (word-aligned by
	// producers; consumers only look at Addr.Word() / Addr.Page()).
	Addr mem.PhysAddr
	// Write marks a write access. Under the write-allocate policy both
	// reads and writes first fetch the line, so counters treat them alike,
	// but the flag is preserved for policies that care.
	Write bool
}

// Source produces a stream of accesses. Next returns ok=false when the
// stream is exhausted.
type Source interface {
	Next() (Access, bool)
}

// Sink consumes accesses one at a time. PAC, WAC, HPT, HWT, and the DRAM
// bandwidth monitors all implement Sink.
type Sink interface {
	Observe(Access)
}

// KernelCostBounded is implemented by sinks whose per-Observe kernel-time
// charge (System.AddKernelNs) has a static upper bound. The simulator's
// fast-forward engine needs such a bound to prove no event horizon can be
// crossed mid-segment; a sink that cannot bound its charge keeps the
// engine on the exact scalar path (which is always correct, just slower).
type KernelCostBounded interface {
	// MaxObserveKernelNs bounds the kernel nanoseconds one Observe call
	// may charge.
	MaxObserveKernelNs() uint64
}

// WeightedSink is implemented by sinks that can record one access n times
// in O(1). ObserveN(a, n) must leave the sink in the same observable state
// as n consecutive Observe(a) calls; the simulator's sampled tier uses it
// to credit the traffic of thinned-away batches (Horvitz-Thompson
// weighting) without replaying the sink work n times.
type WeightedSink interface {
	Sink
	// ObserveN records the access n times.
	ObserveN(a Access, n uint64)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Access)

// Observe implements Sink.
func (f SinkFunc) Observe(a Access) { f(a) }

// Tee fans one access out to several sinks, mirroring the AFU snoop path of
// Figure 2 where PAC/WAC observe the same address stream the MC serves.
type Tee []Sink

// Observe implements Sink by forwarding to every sink in order.
//m5:hotpath
func (t Tee) Observe(a Access) {
	for _, s := range t {
		s.Observe(a)
	}
}

// ObserveN implements WeightedSink: sinks that support weighted observes
// get one O(1) call; the rest replay n sequential Observes, so the fan-out
// is state-equivalent either way.
//m5:hotpath
func (t Tee) ObserveN(a Access, n uint64) {
	for _, s := range t {
		if w, ok := s.(WeightedSink); ok {
			w.ObserveN(a, n)
			continue
		}
		for i := uint64(0); i < n; i++ {
			s.Observe(a)
		}
	}
}

// SliceSource replays a recorded trace.
type SliceSource struct {
	accesses []Access
	pos      int
}

// NewSliceSource wraps a slice of accesses (not copied).
func NewSliceSource(accesses []Access) *SliceSource {
	return &SliceSource{accesses: accesses}
}

// Next implements Source.
func (s *SliceSource) Next() (Access, bool) {
	if s.pos >= len(s.accesses) {
		return Access{}, false
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, true
}

// Rewind restarts the source from the beginning.
func (s *SliceSource) Rewind() { s.pos = 0 }

// Len returns the total number of accesses in the trace.
func (s *SliceSource) Len() int { return len(s.accesses) }

// Drain pushes every access from src into sink and returns the count.
func Drain(src Source, sink Sink) int {
	n := 0
	for {
		a, ok := src.Next()
		if !ok {
			return n
		}
		sink.Observe(a)
		n++
	}
}

// Collect gathers up to max accesses from a source (max <= 0 means all).
func Collect(src Source, max int) []Access {
	var out []Access
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// Binary trace file format: 8-byte magic+version header followed by fixed
// 17-byte little-endian records (time, addr, flags).
const (
	magic   = "M5TRACE"
	version = byte(1)
)

var errBadMagic = errors.New("trace: bad magic or unsupported version")

const recordSize = 8 + 8 + 1

// Writer serializes accesses to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   uint64
}

// NewWriter writes the header and returns a Writer. Close must be called to
// flush buffered records.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one access record.
func (w *Writer) Write(a Access) error {
	binary.LittleEndian.PutUint64(w.buf[0:8], a.Time)
	binary.LittleEndian.PutUint64(w.buf[8:16], uint64(a.Addr))
	w.buf[16] = 0
	if a.Write {
		w.buf[16] = 1
	}
	w.n++
	_, err := w.w.Write(w.buf[:])
	return err
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Close flushes buffered records. The underlying writer is not closed.
func (w *Writer) Close() error { return w.w.Flush() }

// NewCompressedWriter wraps the writer in gzip before the trace encoding;
// recorded traces compress well (timestamps and addresses are strongly
// correlated). Close flushes both layers.
func NewCompressedWriter(w io.Writer) (*CompressedWriter, error) {
	gz := gzip.NewWriter(w)
	tw, err := NewWriter(gz)
	if err != nil {
		return nil, err
	}
	return &CompressedWriter{Writer: tw, gz: gz}, nil
}

// CompressedWriter is a Writer over a gzip stream.
type CompressedWriter struct {
	*Writer
	gz *gzip.Writer
}

// Close flushes the trace buffer and the gzip stream.
func (w *CompressedWriter) Close() error {
	if err := w.Writer.Close(); err != nil {
		return err
	}
	return w.gz.Close()
}

// NewCompressedReader opens a gzip-compressed trace.
func NewCompressedReader(r io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
	}
	return NewReader(gz)
}

// Reader deserializes accesses from an io.Reader and implements Source.
type Reader struct {
	r   *bufio.Reader
	buf [recordSize]byte
	err error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic || head[len(magic)] != version {
		return nil, errBadMagic
	}
	return &Reader{r: br}, nil
}

// Next implements Source. After exhaustion, Err reports any non-EOF error.
func (r *Reader) Next() (Access, bool) {
	if r.err != nil {
		return Access{}, false
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err != io.EOF {
			r.err = err
		}
		return Access{}, false
	}
	return Access{
		Time:  binary.LittleEndian.Uint64(r.buf[0:8]),
		Addr:  mem.PhysAddr(binary.LittleEndian.Uint64(r.buf[8:16])),
		Write: r.buf[16] != 0,
	}, true
}

// Err returns the first non-EOF error encountered while reading.
func (r *Reader) Err() error { return r.err }
