package trace

import (
	"bytes"
	"testing"

	"m5/internal/mem"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, and every record it does parse must round-trip back to identical
// bytes through the writer.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-record trace and some corruptions.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Access{Time: 1, Addr: 0x1000})
	w.Write(Access{Time: 2, Addr: 0x2040, Write: true})
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])      // truncated record
	f.Add([]byte("M5TRACE\x01"))     // header only
	f.Add([]byte("NOTATRACEATALL!")) // bad magic
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		var out []Access
		for {
			a, ok := r.Next()
			if !ok {
				break
			}
			out = append(out, a)
		}
		// Re-encode what parsed; the byte prefix must match the input.
		var re bytes.Buffer
		w, err := NewWriter(&re)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range out {
			// Write flag must be canonicalized: the reader maps any
			// nonzero flag byte to true, the writer emits 0/1 — so
			// compare against a canonical re-read instead of raw bytes
			// when flags were non-canonical.
			if err := w.Write(a); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		r2, err := NewReader(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			a, ok := r2.Next()
			if !ok {
				if i != len(out) {
					t.Fatalf("re-read %d records, want %d", i, len(out))
				}
				break
			}
			if a != out[i] {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, a, out[i])
			}
		}
	})
}

// FuzzAddressArithmetic checks the mem package's decompositions stay
// consistent for arbitrary addresses.
func FuzzAddressArithmetic(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0xFFFF_FFFF_FFFF))
	f.Add(uint64(1) << 47)
	f.Fuzz(func(t *testing.T, raw uint64) {
		a := mem.PhysAddr(raw % uint64(mem.MaxPhysAddr))
		if a.Word().Page() != a.Page() {
			t.Fatal("word/page disagree")
		}
		if a.Word().Index() != a.WordIndex() {
			t.Fatal("word index disagrees")
		}
		if a.Page().Addr() > a {
			t.Fatal("page base beyond address")
		}
		if a.Page().HugePage() != a.HugePage() {
			t.Fatal("huge page disagrees")
		}
	})
}
