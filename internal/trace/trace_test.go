package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"m5/internal/mem"
)

func TestSliceSource(t *testing.T) {
	accs := []Access{
		{Time: 1, Addr: 0x1000},
		{Time: 2, Addr: 0x2000, Write: true},
	}
	src := NewSliceSource(accs)
	if src.Len() != 2 {
		t.Fatalf("Len = %d", src.Len())
	}
	got := Collect(src, 0)
	if len(got) != 2 || got[0] != accs[0] || got[1] != accs[1] {
		t.Fatalf("Collect = %+v", got)
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source should return ok=false")
	}
	src.Rewind()
	if a, ok := src.Next(); !ok || a != accs[0] {
		t.Error("Rewind should restart the stream")
	}
}

func TestCollectMax(t *testing.T) {
	accs := make([]Access, 10)
	src := NewSliceSource(accs)
	if got := Collect(src, 3); len(got) != 3 {
		t.Errorf("Collect(max=3) returned %d", len(got))
	}
}

func TestDrainAndTee(t *testing.T) {
	accs := []Access{{Addr: 0x40}, {Addr: 0x80}, {Addr: 0xc0}}
	var a, b int
	tee := Tee{
		SinkFunc(func(Access) { a++ }),
		SinkFunc(func(Access) { b++ }),
	}
	n := Drain(NewSliceSource(accs), tee)
	if n != 3 || a != 3 || b != 3 {
		t.Errorf("Drain/Tee: n=%d a=%d b=%d", n, a, b)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := make([]Access, 1000)
	for i := range in {
		in[i] = Access{
			Time:  uint64(i) * 3,
			Addr:  mem.PhysAddr(rng.Uint64() % uint64(mem.MaxPhysAddr)),
			Write: rng.Intn(2) == 0,
		}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range in {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 1000 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic should be rejected")
	}
	if _, err := NewReader(bytes.NewReader([]byte("M5"))); err == nil {
		t.Error("short header should be rejected")
	}
	// Correct magic, wrong version.
	if _, err := NewReader(bytes.NewReader([]byte("M5TRACE\x7f"))); err == nil {
		t.Error("wrong version should be rejected")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Access{Time: 1, Addr: 0x40})
	w.Close()
	raw := buf.Bytes()
	// Chop mid-record.
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("truncated record should not parse")
	}
	if r.Err() == nil {
		t.Error("truncation should surface as an error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(times []uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make([]Access, len(times))
		for i, tm := range times {
			in[i] = Access{Time: tm, Addr: mem.PhysAddr(rng.Uint64()), Write: rng.Intn(2) == 0}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, a := range in {
			if w.Write(a) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out := Collect(r, 0)
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := make([]Access, 5000)
	for i := range in {
		in[i] = Access{Time: uint64(i), Addr: mem.PhysAddr(rng.Intn(1<<20) * 64), Write: i%3 == 0}
	}
	var buf bytes.Buffer
	w, err := NewCompressedWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range in {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= len(in)*17 {
		t.Errorf("compressed size %d not below raw %d", buf.Len(), len(in)*17)
	}
	r, err := NewCompressedReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := Collect(r, 0)
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestCompressedReaderRejectsPlainTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Access{Addr: 64})
	w.Close()
	if _, err := NewCompressedReader(&buf); err == nil {
		t.Error("plain trace should not open as gzip")
	}
}
