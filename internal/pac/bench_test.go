package pac

import (
	"testing"

	"m5/internal/mem"
	"m5/internal/trace"
)

// Observe is called once per CXL access in the simulator, so both PAC
// variants must stay allocation-free at steady state — including the
// CachedCounter's eviction path, which spills into the open-addressed
// access-count table on almost every miss.

func TestObserveZeroAllocs(t *testing.T) {
	const pages = 1024
	region := testRegion(pages)
	first := uint64(region.Start.Page())

	t.Run("CachedCounter", func(t *testing.T) {
		c := NewCached(CachedConfig{
			Config:  Config{Granularity: PageCounter, Region: region},
			Entries: 64, Ways: 4, // tiny SRAM: evicts (spills) constantly
		})
		for i := 0; i < 4*pages; i++ {
			c.Observe(trace.Access{Addr: mem.PFN(first + uint64(i)%pages).Addr()})
		}
		i := uint64(0)
		allocs := testing.AllocsPerRun(10_000, func() {
			c.Observe(trace.Access{Addr: mem.PFN(first + i%pages).Addr()})
			i += 7
		})
		if allocs != 0 {
			t.Errorf("CachedCounter.Observe allocates %.1f allocs/op at steady state", allocs)
		}
	})

	t.Run("Counter", func(t *testing.T) {
		c := New(Config{Granularity: PageCounter, Region: region})
		i := uint64(0)
		allocs := testing.AllocsPerRun(10_000, func() {
			c.Observe(trace.Access{Addr: mem.PFN(first + i%pages).Addr()})
			i += 7
		})
		if allocs != 0 {
			t.Errorf("Counter.Observe allocates %.1f allocs/op", allocs)
		}
	})
}

func BenchmarkCachedCounterObserve(b *testing.B) {
	const pages = 1024
	region := testRegion(pages)
	first := uint64(region.Start.Page())
	c := NewCached(CachedConfig{
		Config:  Config{Granularity: PageCounter, Region: region},
		Entries: 64, Ways: 4,
	})
	for i := 0; i < 4*pages; i++ {
		c.Observe(trace.Access{Addr: mem.PFN(first + uint64(i)%pages).Addr()})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(trace.Access{Addr: mem.PFN(first + uint64(i)%pages).Addr()})
	}
}

func BenchmarkCounterObserve(b *testing.B) {
	const pages = 1024
	region := testRegion(pages)
	first := uint64(region.Start.Page())
	c := New(Config{Granularity: PageCounter, Region: region})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(trace.Access{Addr: mem.PFN(first + uint64(i)%pages).Addr()})
	}
}
