package pac_test

import (
	"fmt"

	"m5/internal/mem"
	"m5/internal/pac"
	"m5/internal/trace"
)

// ExampleCounter shows PAC's offline profiling flow: count every access,
// then read the precise totals and rank pages.
func ExampleCounter() {
	region := mem.NewRange(0, 16*mem.PageSize)
	p := pac.NewPAC(region)

	for i := 0; i < 7; i++ {
		p.Observe(trace.Access{Addr: mem.PFN(3).Addr()})
	}
	p.Observe(trace.Access{Addr: mem.PFN(9).Addr()})

	for _, kc := range p.TopK(2) {
		fmt.Printf("%s: %d\n", mem.PFN(kc.Key), kc.Count)
	}
	fmt.Printf("ratio of a perfect hot list: %.2f\n",
		p.AccessCountRatio([]uint64{3, 9}))
	// Output:
	// pfn:0x3: 7
	// pfn:0x9: 1
	// ratio of a perfect hot list: 1.00
}

// ExampleCounter_SparsityCDF shows WAC's Figure 4 output: the probability
// a page has at most N unique words accessed.
func ExampleCounter_SparsityCDF() {
	region := mem.NewRange(0, 4*mem.PageSize)
	w := pac.NewWAC(region)

	// Page 0: 2 unique words (sparse). Page 1: 40 unique words (dense).
	for i := uint(0); i < 2; i++ {
		w.Observe(trace.Access{Addr: mem.PFN(0).Word(i).Addr()})
	}
	for i := uint(0); i < 40; i++ {
		w.Observe(trace.Access{Addr: mem.PFN(1).Word(i).Addr()})
	}

	cdf := w.SparsityCDF([]int{16, 48})
	fmt.Printf("P(<=16 words) = %.1f\n", cdf[0])
	fmt.Printf("P(<=48 words) = %.1f\n", cdf[1])
	// Output:
	// P(<=16 words) = 0.5
	// P(<=48 words) = 1.0
}
