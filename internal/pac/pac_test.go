package pac

import (
	"math/rand"
	"testing"
	"testing/quick"

	"m5/internal/mem"
	"m5/internal/trace"
)

func testRegion(pages uint64) mem.Range {
	return mem.NewRange(0x1000_0000, pages*mem.PageSize)
}

func TestPACCountsExactly(t *testing.T) {
	r := testRegion(16)
	p := NewPAC(r)
	base := r.Start
	for i := 0; i < 5; i++ {
		p.Observe(trace.Access{Addr: base})
	}
	for i := 0; i < 3; i++ {
		p.Observe(trace.Access{Addr: base + mem.PageSize + 64})
	}
	if got := p.CountPage(base.Page()); got != 5 {
		t.Errorf("page 0 count = %d, want 5", got)
	}
	if got := p.CountPage(base.Page() + 1); got != 3 {
		t.Errorf("page 1 count = %d, want 3", got)
	}
	if p.Total() != 8 {
		t.Errorf("Total = %d", p.Total())
	}
	if p.NonZero() != 2 {
		t.Errorf("NonZero = %d", p.NonZero())
	}
}

func TestOutOfRegionDropped(t *testing.T) {
	r := testRegion(4)
	p := NewPAC(r)
	p.Observe(trace.Access{Addr: r.End})
	p.Observe(trace.Access{Addr: r.Start - 64})
	if p.Total() != 0 || p.Dropped() != 2 {
		t.Errorf("Total=%d Dropped=%d", p.Total(), p.Dropped())
	}
	if p.Count(uint64(r.End.Page())) != 0 {
		t.Error("out-of-region key should count 0")
	}
}

func TestSaturationSpill(t *testing.T) {
	r := testRegion(2)
	// Tiny 2-bit counters: saturate at 3.
	c := New(Config{Granularity: PageCounter, Region: r, CounterBits: 2})
	for i := 0; i < 10; i++ {
		c.Observe(trace.Access{Addr: r.Start})
	}
	if got := c.CountPage(r.Start.Page()); got != 10 {
		t.Errorf("count with spills = %d, want 10", got)
	}
	if c.Spills() == 0 {
		t.Error("expected at least one spill event")
	}
}

func TestSpillExactnessProperty(t *testing.T) {
	// Precise counts must be exact regardless of counter width.
	f := func(seed int64, bits uint8) bool {
		b := uint(bits%6) + 1 // 1..6 bit counters
		rng := rand.New(rand.NewSource(seed))
		r := testRegion(8)
		c := New(Config{Granularity: PageCounter, Region: r, CounterBits: b})
		truth := map[uint64]uint64{}
		for i := 0; i < 2000; i++ {
			pg := mem.PFN(uint64(r.Start.Page()) + uint64(rng.Intn(8)))
			c.Observe(trace.Access{Addr: pg.Addr()})
			truth[uint64(pg)]++
		}
		for k, v := range truth {
			if c.Count(k) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWACWordGranularity(t *testing.T) {
	r := testRegion(2)
	w := NewWAC(r)
	if w.Config().CounterBits != DefaultWACBits {
		t.Errorf("WAC default bits = %d", w.Config().CounterBits)
	}
	p0 := r.Start.Page()
	w.Observe(trace.Access{Addr: p0.Word(0).Addr()})
	w.Observe(trace.Access{Addr: p0.Word(0).Addr()})
	w.Observe(trace.Access{Addr: p0.Word(5).Addr()})
	if got := w.CountWord(p0.Word(0)); got != 2 {
		t.Errorf("word 0 = %d", got)
	}
	if got := w.CountWord(p0.Word(5)); got != 1 {
		t.Errorf("word 5 = %d", got)
	}
	// Cross-granularity accessors return 0.
	if w.CountPage(p0) != 0 {
		t.Error("CountPage on a WAC should be 0")
	}
	pac := NewPAC(r)
	if pac.CountWord(p0.Word(0)) != 0 {
		t.Error("CountWord on a PAC should be 0")
	}
}

func TestWordsAccessedPerPageAndSparsity(t *testing.T) {
	r := testRegion(10)
	w := NewWAC(r)
	first := r.Start.Page()
	// Page 0: 4 unique words; page 1: 40 unique words.
	for i := uint(0); i < 4; i++ {
		w.Observe(trace.Access{Addr: first.Word(i).Addr()})
	}
	for i := uint(0); i < 40; i++ {
		w.Observe(trace.Access{Addr: (first + 1).Word(i).Addr()})
	}
	per := w.WordsAccessedPerPage()
	if per[first] != 4 || per[first+1] != 40 {
		t.Errorf("per-page words = %v", per)
	}
	cdf := w.SparsityCDF([]int{4, 8, 16, 32, 48})
	// One of two pages has <=4 words: 0.5 at every threshold < 40.
	want := []float64{0.5, 0.5, 0.5, 0.5, 1.0}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("SparsityCDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	// PAC has no sparsity view.
	if NewPAC(r).WordsAccessedPerPage() != nil {
		t.Error("PAC WordsAccessedPerPage should be nil")
	}
	if got := NewWAC(r).SparsityCDF([]int{4}); got[0] != 0 {
		t.Error("empty WAC sparsity should be 0")
	}
}

func TestTopKAndRatio(t *testing.T) {
	r := testRegion(8)
	p := NewPAC(r)
	first := uint64(r.Start.Page())
	// Page i gets i+1 accesses.
	for i := uint64(0); i < 8; i++ {
		for j := uint64(0); j <= i; j++ {
			p.Observe(trace.Access{Addr: mem.PFN(first + i).Addr()})
		}
	}
	top := p.TopK(3)
	if len(top) != 3 || top[0].Key != first+7 || top[0].Count != 8 {
		t.Fatalf("TopK = %+v", top)
	}
	// Perfect keys give ratio 1.
	if r := p.AccessCountRatio([]uint64{first + 7, first + 6, first + 5}); r != 1 {
		t.Errorf("perfect ratio = %v", r)
	}
	// Worst keys: (1+2+3)/(8+7+6) = 6/21.
	got := p.AccessCountRatio([]uint64{first, first + 1, first + 2})
	if want := 6.0 / 21.0; got != want {
		t.Errorf("worst ratio = %v, want %v", got, want)
	}
	if p.AccessCountRatio(nil) != 0 {
		t.Error("empty key list ratio should be 0")
	}
}

func TestReset(t *testing.T) {
	r := testRegion(2)
	p := NewPAC(r)
	p.Observe(trace.Access{Addr: r.Start})
	p.Observe(trace.Access{Addr: r.End}) // dropped
	p.Reset()
	if p.Total() != 0 || p.Dropped() != 0 || p.NonZero() != 0 {
		t.Error("Reset should clear everything")
	}
}

func TestCountsSnapshot(t *testing.T) {
	r := testRegion(4)
	p := NewPAC(r)
	p.Observe(trace.Access{Addr: r.Start})
	m := p.Counts()
	if len(m) != 1 || m[uint64(r.Start.Page())] != 1 {
		t.Errorf("Counts = %v", m)
	}
	// Snapshot is independent of later updates.
	p.Observe(trace.Access{Addr: r.Start})
	if m[uint64(r.Start.Page())] != 1 {
		t.Error("snapshot should not alias live counters")
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	// An empty region is no longer an error: the zero-value Config
	// defaults to a 128MB window from 0 (see defaults_test.go).
	mustPanic("unaligned region", func() {
		New(Config{Region: mem.NewRange(64, mem.PageSize)})
	})
	mustPanic("wide counter", func() {
		New(Config{Region: testRegion(1), CounterBits: 64})
	})
}

func TestMMIOWindowing(t *testing.T) {
	// Region large enough that the SRAM image exceeds one 1MB window:
	// 16-bit counters, 1M pages -> 2MB image.
	pages := uint64(1 << 20)
	r := testRegion(pages)
	p := NewPAC(r)
	m := p.MMIO()
	if m.SRAMImageBytes() != 2<<20 {
		t.Fatalf("SRAM image = %d bytes", m.SRAMImageBytes())
	}
	// Count one access in a page that lives beyond the first window
	// (entry index 600000 -> byte offset 1.2MB).
	idx := uint64(600000)
	p.Observe(trace.Access{Addr: mem.PFN(uint64(r.Start.Page()) + idx).Addr()})

	// Not visible in window 0 at that offset (offset beyond window).
	if _, err := m.Read(idx * 2); err == nil {
		t.Error("read beyond 1MB window should fail")
	}
	// Program the window and read it.
	if err := m.SetWindowBase(MMIOWindowBytes); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(idx*2 - MMIOWindowBytes)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("MMIO read = %d, want 1", v)
	}
}

func TestMMIOValidation(t *testing.T) {
	p := NewPAC(testRegion(16))
	m := p.MMIO()
	if err := m.SetWindowBase(123); err == nil {
		t.Error("unaligned base should fail")
	}
	if err := m.SetWindowBase(64 << 20); err == nil {
		t.Error("base beyond image should fail")
	}
	if _, err := m.Read(1); err == nil {
		t.Error("unaligned offset should fail")
	}
	if _, err := m.Read(16 * 2); err == nil {
		t.Error("read beyond SRAM entries should fail")
	}
	if m.WindowBase() != 0 {
		t.Error("failed SetWindowBase should not change the register")
	}
}

func TestMMIOReadAll(t *testing.T) {
	r := testRegion(32)
	p := NewPAC(r)
	first := uint64(r.Start.Page())
	for i := uint64(0); i < 32; i++ {
		for j := uint64(0); j <= i%3; j++ {
			p.Observe(trace.Access{Addr: mem.PFN(first + i).Addr()})
		}
	}
	all, err := p.MMIO().ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 32 {
		t.Fatalf("ReadAll returned %d entries", len(all))
	}
	for i, v := range all {
		if want := uint64(i%3) + 1; v != want {
			t.Errorf("entry %d = %d, want %d", i, v, want)
		}
	}
}

func TestStringer(t *testing.T) {
	if PageCounter.String() != "pac" || WordCounter.String() != "wac" {
		t.Error("granularity names")
	}
}
