// Package pac models the paper's CXL-driven profiling hardware (§3): the
// Page Access Counter (PAC) and Word Access Counter (WAC). Both snoop every
// address travelling from the CXL IP to the memory controllers and keep an
// exact L-bit saturating count per 4KB page (PAC) or 64B word (WAC) in an
// SRAM unit. Saturated counters spill into 64-bit counters in an
// access-count table allocated in host or device memory, so the host CPU
// can read precise totals after a run.
//
// The SRAM unit is exposed to the host as a windowed MMIO region (§3
// "Software"): a 2MB MMIO BAR split into 1MB of counter window and 1MB of
// configuration/control registers, with a base-address register selecting
// which 1MB slice of the SRAM is visible.
package pac

import (
	"fmt"
	"sort"

	"m5/internal/mem"
	"m5/internal/sketch"
	"m5/internal/trace"
)

// Granularity selects page or word counting.
type Granularity int

const (
	// PageCounter counts per 4KB page (PAC).
	PageCounter Granularity = iota
	// WordCounter counts per 64B word (WAC).
	WordCounter
)

// String names the granularity.
func (g Granularity) String() string {
	if g == WordCounter {
		return "wac"
	}
	return "pac"
}

// Default hardware parameters from §3.
const (
	// DefaultSRAMBytes is the SRAM unit capacity (4MB).
	DefaultSRAMBytes = 4 << 20
	// DefaultPACBits is the per-page counter width; a 16-bit count
	// saturates only after ~20s even for memory-intensive workloads.
	DefaultPACBits = 16
	// DefaultWACBits is the per-word counter width; WAC maps each word of
	// a 128MB region to a 4-bit counter.
	DefaultWACBits = 4
	// DefaultWACRegionBytes is the WAC monitoring window (128MB at a time).
	DefaultWACRegionBytes = 128 << 20
	// MMIOWindowBytes is the counter window visible through MMIO (1MB of
	// the 2MB region; the other 1MB holds config/control registers).
	MMIOWindowBytes = 1 << 20
)

// Config describes a PAC or WAC instance.
type Config struct {
	// Granularity is page (PAC) or word (WAC).
	Granularity Granularity
	// Region is the physical address range monitored. Accesses outside
	// the region are ignored (§3 "Scalability", second approach).
	Region mem.Range
	// CounterBits is L, the SRAM counter width. Defaults: 16 (PAC), 4 (WAC).
	CounterBits uint
}

// withDefaults fills zero fields so that, like the rest of the config
// structs in this repo, the zero value is a valid configuration: a
// DefaultWACRegionBytes window starting at physical address 0 and the §3
// counter width for the granularity.
func (c Config) withDefaults() Config {
	if c.Region.Size() == 0 {
		c.Region = mem.NewRange(0, DefaultWACRegionBytes)
	}
	if c.CounterBits == 0 {
		if c.Granularity == WordCounter {
			c.CounterBits = DefaultWACBits
		} else {
			c.CounterBits = DefaultPACBits
		}
	}
	return c
}

// Counter is an exact access counter: PAC or WAC. It implements trace.Sink.
type Counter struct {
	cfg      Config
	max      uint64   // saturation value: 2^L - 1
	sram     []uint64 // one entry per page/word in the region
	spill    map[uint64]uint64
	firstKey uint64
	total    uint64
	dropped  uint64 // accesses outside the monitored region
	spills   uint64 // saturation spill events
}

// New builds a counter from the config, applying defaults (a 128MB region
// from address 0, L=16 for PAC / L=4 for WAC) for zero fields; an
// explicitly set region must be page-aligned.
func New(cfg Config) *Counter {
	cfg = cfg.withDefaults()
	if cfg.Region.Start.PageOffset() != 0 {
		panic("pac: region must be page-aligned")
	}
	if cfg.CounterBits > 63 {
		panic("pac: counter width must be at most 63 bits")
	}
	var entries, first uint64
	if cfg.Granularity == WordCounter {
		entries = cfg.Region.Words()
		first = uint64(cfg.Region.Start.Word())
	} else {
		entries = cfg.Region.Pages()
		first = uint64(cfg.Region.Start.Page())
	}
	return &Counter{
		cfg:      cfg,
		max:      (uint64(1) << cfg.CounterBits) - 1,
		sram:     make([]uint64, entries),
		spill:    make(map[uint64]uint64),
		firstKey: first,
	}
}

// NewPAC builds a page counter over the region with default parameters.
func NewPAC(region mem.Range) *Counter {
	return New(Config{Granularity: PageCounter, Region: region})
}

// NewWAC builds a word counter over the region with default parameters.
// The region conventionally covers at most DefaultWACRegionBytes at a time.
func NewWAC(region mem.Range) *Counter {
	return New(Config{Granularity: WordCounter, Region: region})
}

// Config returns the counter's configuration.
func (c *Counter) Config() Config { return c.cfg }

// key maps an address to the counter key, or ok=false when outside the
// monitored region.
//m5:hotpath
func (c *Counter) key(a mem.PhysAddr) (uint64, bool) {
	if !c.cfg.Region.Contains(a) {
		return 0, false
	}
	if c.cfg.Granularity == WordCounter {
		return uint64(a.Word()), true
	}
	return uint64(a.Page()), true
}

// Observe implements trace.Sink: count one DRAM access.
//m5:hotpath
func (c *Counter) Observe(a trace.Access) {
	key, ok := c.key(a.Addr)
	if !ok {
		c.dropped++
		return
	}
	c.total++
	i := key - c.firstKey
	if c.sram[i] == c.max {
		// Saturation: accumulate into the 64-bit access-count table via a
		// D2H/D2D write and restart the SRAM counter at 1.
		c.spill[key] += c.sram[i]
		c.sram[i] = 1
		c.spills++
		return
	}
	c.sram[i]++
}

// ObserveN implements trace.WeightedSink: count the access n times in one
// operation (the sampled simulator tier's weighted crediting). The spill
// arithmetic reproduces the sequential semantics in closed form: from an
// SRAM value v, the first max-v occurrences fill the counter; after that
// every block of max occurrences spends one on a spill event (accumulate
// max into the table, restart at 1) and the rest on increments.
//m5:hotpath
func (c *Counter) ObserveN(a trace.Access, n uint64) {
	if n == 0 {
		return
	}
	key, ok := c.key(a.Addr)
	if !ok {
		c.dropped += n
		return
	}
	c.total += n
	i := key - c.firstKey
	room := c.max - c.sram[i]
	if n <= room {
		c.sram[i] += n
		return
	}
	//m5:coldpath saturation: identical spill totals to n sequential Observes.
	r := n - room // occurrences arriving with the counter saturated
	events := (r-1)/c.max + 1
	c.spill[key] += events * c.max
	c.spills += events
	c.sram[i] = (r-1)%c.max + 1
}

// Count returns the precise access count of the page/word key (SRAM value
// plus spilled amount).
func (c *Counter) Count(key uint64) uint64 {
	if key < c.firstKey || key-c.firstKey >= uint64(len(c.sram)) {
		return 0
	}
	return c.spill[key] + c.sram[key-c.firstKey]
}

// CountPage returns the count of a PFN (PAC only; 0 for WAC).
func (c *Counter) CountPage(p mem.PFN) uint64 {
	if c.cfg.Granularity != PageCounter {
		return 0
	}
	return c.Count(uint64(p))
}

// CountWord returns the count of a word (WAC only; 0 for PAC).
func (c *Counter) CountWord(w mem.WordNum) uint64 {
	if c.cfg.Granularity != WordCounter {
		return 0
	}
	return c.Count(uint64(w))
}

// Total returns the number of in-region accesses observed.
func (c *Counter) Total() uint64 { return c.total }

// Dropped returns the number of accesses ignored as out-of-region.
func (c *Counter) Dropped() uint64 { return c.dropped }

// Spills returns the number of counter-saturation spill events.
func (c *Counter) Spills() uint64 { return c.spills }

// Entries returns the number of SRAM counter entries.
func (c *Counter) Entries() int { return len(c.sram) }

// TopK returns the K hottest keys by precise count, descending, skipping
// zero-count keys. This is the host-side "fetch all counts and sort" path
// whose latency motivates HPT/HWT (§5.1).
func (c *Counter) TopK(k int) []sketch.KeyCount {
	out := make([]sketch.KeyCount, 0, k)
	for i, v := range c.sram {
		key := c.firstKey + uint64(i)
		total := v + c.spill[key]
		if total == 0 {
			continue
		}
		out = append(out, sketch.KeyCount{Key: key, Count: total})
	}
	sketch.SortKeyCounts(out)
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Counts returns the full access-count table: every key with a nonzero
// precise count. The map is freshly allocated.
func (c *Counter) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i, v := range c.sram {
		key := c.firstKey + uint64(i)
		if t := v + c.spill[key]; t != 0 {
			out[key] = t
		}
	}
	return out
}

// NonZero returns the number of keys with a nonzero count.
func (c *Counter) NonZero() int {
	n := 0
	for i, v := range c.sram {
		if v != 0 || c.spill[c.firstKey+uint64(i)] != 0 {
			n++
		}
	}
	return n
}

// SumCounts sums the precise counts of the given keys; used by the
// access-count-ratio metric (§4.1 steps S4-S5).
func (c *Counter) SumCounts(keys []uint64) uint64 {
	var sum uint64
	for _, k := range keys {
		sum += c.Count(k)
	}
	return sum
}

// AccessCountRatio computes the paper's headline metric: the summed precise
// counts of the provided keys divided by the summed counts of the true
// top-K keys, where K = len(keys) (§4.1). Returns 0 when the counter saw
// no accesses.
func (c *Counter) AccessCountRatio(keys []uint64) float64 {
	if len(keys) == 0 {
		return 0
	}
	top := c.TopK(len(keys))
	var best uint64
	for _, kc := range top {
		best += kc.Count
	}
	if best == 0 {
		return 0
	}
	return float64(c.SumCounts(keys)) / float64(best)
}

// Snapshot is a deep copy of a counter's state, for forking warmed
// simulator checkpoints.
type Snapshot struct {
	sram    []uint64
	spill   map[uint64]uint64
	total   uint64
	dropped uint64
	spills  uint64
}

// Snapshot deep-copies the counter state.
func (c *Counter) Snapshot() Snapshot {
	spill := make(map[uint64]uint64, len(c.spill))
	for k, v := range c.spill {
		spill[k] = v
	}
	return Snapshot{
		sram:    append([]uint64(nil), c.sram...),
		spill:   spill,
		total:   c.total,
		dropped: c.dropped,
		spills:  c.spills,
	}
}

// Restore rewinds the counter to a snapshot taken from a counter with the
// same configuration.
func (c *Counter) Restore(s Snapshot) {
	copy(c.sram, s.sram)
	c.spill = make(map[uint64]uint64, len(s.spill))
	for k, v := range s.spill {
		c.spill[k] = v
	}
	c.total, c.dropped, c.spills = s.total, s.dropped, s.spills
}

// Reset clears all counters, spills, and statistics.
func (c *Counter) Reset() {
	for i := range c.sram {
		c.sram[i] = 0
	}
	c.spill = make(map[uint64]uint64)
	c.total, c.dropped, c.spills = 0, 0, 0
}

// WordsAccessedPerPage returns, for each page with at least one counted
// word, the number of unique 64B words accessed (WAC only). This feeds the
// sparsity analysis of Figure 4.
func (c *Counter) WordsAccessedPerPage() map[mem.PFN]int {
	if c.cfg.Granularity != WordCounter {
		return nil
	}
	out := make(map[mem.PFN]int)
	for i, v := range c.sram {
		key := c.firstKey + uint64(i)
		if v == 0 && c.spill[key] == 0 {
			continue
		}
		out[mem.WordNum(key).Page()]++
	}
	return out
}

// SparsityCDF returns P(page has at most t unique words accessed) for each
// threshold, over pages with at least one access (Figure 4's y-axis).
func (c *Counter) SparsityCDF(thresholds []int) []float64 {
	per := c.WordsAccessedPerPage()
	out := make([]float64, len(thresholds))
	if len(per) == 0 {
		return out
	}
	counts := make([]int, 0, len(per))
	for _, n := range per {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for i, t := range thresholds {
		idx := sort.SearchInts(counts, t+1)
		out[i] = float64(idx) / float64(len(counts))
	}
	return out
}

// MMIO returns the windowed MMIO view of the SRAM unit.
func (c *Counter) MMIO() *MMIO { return &MMIO{c: c} }

// MMIO models the 2MB MMIO BAR of §3: a 1MB counter window plus
// configuration registers. SetWindowBase selects which 1MB-aligned slice of
// the (logical) SRAM image is visible; Read returns the counter at a byte
// offset within the window.
type MMIO struct {
	c    *Counter
	base uint64 // window base, in bytes into the SRAM image
}

// entryBytes is the width of one SRAM counter as seen through MMIO. The
// hardware packs L-bit counters; the MMIO view rounds up to bytes.
func (m *MMIO) entryBytes() uint64 {
	b := (uint64(m.c.cfg.CounterBits) + 7) / 8
	if b == 0 {
		b = 1
	}
	return b
}

// SRAMImageBytes returns the size of the full SRAM image in bytes.
func (m *MMIO) SRAMImageBytes() uint64 {
	return uint64(len(m.c.sram)) * m.entryBytes()
}

// SetWindowBase programs the base-address configuration register. The base
// must be MMIOWindowBytes-aligned and within the SRAM image.
func (m *MMIO) SetWindowBase(base uint64) error {
	if base%MMIOWindowBytes != 0 {
		return fmt.Errorf("pac: window base %#x not 1MB-aligned", base)
	}
	if base >= m.SRAMImageBytes() && base != 0 {
		return fmt.Errorf("pac: window base %#x beyond SRAM image (%#x bytes)",
			base, m.SRAMImageBytes())
	}
	m.base = base
	return nil
}

// WindowBase returns the current window base register value.
func (m *MMIO) WindowBase() uint64 { return m.base }

// Read returns the raw SRAM counter value at the byte offset within the
// current window. Only the saturating SRAM value is visible through MMIO;
// spilled totals live in the access-count table in memory.
func (m *MMIO) Read(offset uint64) (uint64, error) {
	if offset >= MMIOWindowBytes {
		return 0, fmt.Errorf("pac: MMIO offset %#x beyond 1MB window", offset)
	}
	eb := m.entryBytes()
	if offset%eb != 0 {
		return 0, fmt.Errorf("pac: MMIO offset %#x not %d-byte aligned", offset, eb)
	}
	idx := (m.base + offset) / eb
	if idx >= uint64(len(m.c.sram)) {
		return 0, fmt.Errorf("pac: MMIO read beyond SRAM (%d entries)", len(m.c.sram))
	}
	return m.c.sram[idx], nil
}

// ReadAll walks the whole SRAM image through the 1MB window, re-programming
// the base register as needed, and returns every raw counter value. It is
// the software sequence described in §3 for accessing 4MB of counts
// through a 1MB window.
func (m *MMIO) ReadAll() ([]uint64, error) {
	out := make([]uint64, 0, len(m.c.sram))
	eb := m.entryBytes()
	image := m.SRAMImageBytes()
	savedBase := m.base
	defer func() { m.base = savedBase }()
	for base := uint64(0); base < image; base += MMIOWindowBytes {
		if err := m.SetWindowBase(base); err != nil {
			return nil, err
		}
		limit := image - base
		if limit > MMIOWindowBytes {
			limit = MMIOWindowBytes
		}
		for off := uint64(0); off < limit; off += eb {
			v, err := m.Read(off)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}
