package pac

import (
	"m5/internal/mem"
	"m5/internal/sketch"
	"m5/internal/trace"
)

// CachedCounter is the §3 "Scalability" first approach: when the SRAM unit
// cannot hold a counter for every page of a large CXL DRAM, the SRAM acts
// as a set-associative cache of counters. On a miss with a full set, the
// controller evicts one counter, accumulates its value into the 64-bit
// access-count table (a D2H/D2D memory write), and starts the newcomer at
// 1. Counts remain exact — eviction moves them, never drops them — but
// reading a key's precise total requires both structures.
type CachedCounter struct {
	cfg     Config
	sets    int
	ways    int
	tags    []uint64
	counts  []uint64
	valid   []bool
	tick    uint64
	lru     []uint64
	spill   *sketch.CountTable // the in-memory access-count table
	total   uint64
	dropped uint64
	evicts  uint64
	hits    uint64
	misses  uint64
}

// CachedConfig sizes the counter cache.
type CachedConfig struct {
	// Config carries granularity and monitored region; CounterBits is
	// unused (cache entries are wide).
	Config
	// Entries is the number of SRAM counter slots (must be a positive
	// multiple of Ways).
	Entries int
	// Ways is the set associativity (default 4).
	Ways int
}

// NewCached builds a counter cache over the region.
func NewCached(cfg CachedConfig) *CachedCounter {
	if cfg.Region.Size() == 0 || cfg.Region.Start.PageOffset() != 0 {
		panic("pac: cached counter needs a page-aligned, non-empty region")
	}
	if cfg.Ways == 0 {
		cfg.Ways = 4
	}
	if cfg.Entries <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("pac: cached counter entries must be a positive multiple of ways")
	}
	return &CachedCounter{
		cfg:    cfg.Config,
		sets:   cfg.Entries / cfg.Ways,
		ways:   cfg.Ways,
		tags:   make([]uint64, cfg.Entries),
		counts: make([]uint64, cfg.Entries),
		valid:  make([]bool, cfg.Entries),
		lru:    make([]uint64, cfg.Entries),
		spill:  sketch.NewCountTable(cfg.Entries),
	}
}

// Observe implements trace.Sink.
//m5:hotpath
func (c *CachedCounter) Observe(a trace.Access) {
	key, ok := c.key(a.Addr)
	if !ok {
		c.dropped++
		return
	}
	c.total++
	set := int(key % uint64(c.sets))
	base := set * c.ways
	c.tick++
	// Hit?
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == key {
			c.counts[i]++
			c.lru[i] = c.tick
			c.hits++
			return
		}
	}
	c.misses++
	// Fill an invalid way if any.
	pick := -1
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			pick = base + w
			break
		}
	}
	if pick < 0 {
		// Evict the LRU counter into the access-count table.
		pick = base
		for w := 1; w < c.ways; w++ {
			if c.lru[base+w] < c.lru[pick] {
				pick = base + w
			}
		}
		c.spill.Inc(c.tags[pick], c.counts[pick])
		c.evicts++
	}
	c.tags[pick] = key
	c.counts[pick] = 1
	c.valid[pick] = true
	c.lru[pick] = c.tick
}

//m5:hotpath
func (c *CachedCounter) key(a mem.PhysAddr) (uint64, bool) {
	if !c.cfg.Region.Contains(a) {
		return 0, false
	}
	if c.cfg.Granularity == WordCounter {
		return uint64(a.Word()), true
	}
	return uint64(a.Page()), true
}

// Count returns the exact access count of a key (resident + spilled).
func (c *CachedCounter) Count(key uint64) uint64 {
	total := c.spill.Get(key)
	set := int(key % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == key {
			total += c.counts[i]
		}
	}
	return total
}

// Counts returns the full access-count table (resident counters flushed
// into a fresh map).
func (c *CachedCounter) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64, c.spill.Len())
	c.spill.Range(func(k, v uint64) bool {
		if v != 0 {
			out[k] = v
		}
		return true
	})
	for i, v := range c.valid {
		if v {
			out[c.tags[i]] += c.counts[i]
		}
	}
	return out
}

// Total returns the number of in-region accesses observed.
func (c *CachedCounter) Total() uint64 { return c.total }

// Dropped returns out-of-region accesses ignored.
func (c *CachedCounter) Dropped() uint64 { return c.dropped }

// Evictions returns how many counters were written back to the table.
func (c *CachedCounter) Evictions() uint64 { return c.evicts }

// HitRate returns the SRAM counter-cache hit rate.
func (c *CachedCounter) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// Reset clears all state.
func (c *CachedCounter) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.counts[i] = 0
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.spill.Reset()
	c.total, c.dropped, c.evicts, c.hits, c.misses, c.tick = 0, 0, 0, 0, 0, 0
}
