package pac

import (
	"m5/internal/mem"
	"m5/internal/trace"
)

// RegionRotator is the §3 "Scalability" second approach for WAC: rather
// than covering all of CXL DRAM with word counters, monitor one bounded
// region (128MB in the paper) at a time and rotate through the regions
// over multiple intervals of a single run. Counts accumulated for a
// region persist across its monitoring windows, so after a full rotation
// every word has been observed for an equal share of the run.
type RegionRotator struct {
	span     mem.Range
	regions  []mem.Range
	counters []*Counter
	active   int
	interval uint64 // accesses per monitoring window
	seen     uint64
	rotates  uint64
}

// NewRegionRotator splits the span into windows of regionBytes (the last
// window may be shorter) and monitors them round-robin, switching every
// intervalAccesses observed accesses.
func NewRegionRotator(span mem.Range, regionBytes uint64, gran Granularity, intervalAccesses uint64) *RegionRotator {
	if regionBytes == 0 {
		regionBytes = DefaultWACRegionBytes
	}
	if regionBytes%mem.PageSize != 0 {
		panic("pac: rotation region size must be page-aligned")
	}
	if intervalAccesses == 0 {
		intervalAccesses = 1 << 20
	}
	r := &RegionRotator{span: span, interval: intervalAccesses}
	for start := span.Start; start < span.End; start += mem.PhysAddr(regionBytes) {
		end := start + mem.PhysAddr(regionBytes)
		if end > span.End {
			end = span.End
		}
		region := mem.Range{Start: start, End: end}
		r.regions = append(r.regions, region)
		r.counters = append(r.counters, New(Config{Granularity: gran, Region: region}))
	}
	return r
}

// Regions returns the number of monitoring windows.
func (r *RegionRotator) Regions() int { return len(r.regions) }

// Active returns the index of the region currently monitored.
func (r *RegionRotator) Active() int { return r.active }

// Rotations returns how many window switches have occurred.
func (r *RegionRotator) Rotations() uint64 { return r.rotates }

// Observe implements trace.Sink: accesses inside the active region are
// counted; everything else is invisible this interval (the hardware
// range-filter register drops it).
func (r *RegionRotator) Observe(a trace.Access) {
	r.seen++
	if r.regions[r.active].Contains(a.Addr) {
		r.counters[r.active].Observe(a) //m5:unitcredit per-access hardware range filter, fed by the exact engine only
	}
	if r.seen%r.interval == 0 {
		r.active = (r.active + 1) % len(r.regions)
		r.rotates++
	}
}

// Count returns the accumulated count for a key, resolving which region's
// counter owns it.
func (r *RegionRotator) Count(key uint64) uint64 {
	var addr mem.PhysAddr
	if r.granularity() == WordCounter {
		addr = mem.WordNum(key).Addr()
	} else {
		addr = mem.PFN(key).Addr()
	}
	for i, region := range r.regions {
		if region.Contains(addr) {
			return r.counters[i].Count(key)
		}
	}
	return 0
}

// Counts merges every region's access-count table.
func (r *RegionRotator) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for _, c := range r.counters {
		for k, v := range c.Counts() {
			out[k] = v
		}
	}
	return out
}

// Counter returns the i-th region's underlying exact counter.
func (r *RegionRotator) Counter(i int) *Counter { return r.counters[i] }

func (r *RegionRotator) granularity() Granularity {
	return r.counters[0].cfg.Granularity
}
