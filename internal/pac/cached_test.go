package pac

import (
	"math/rand"
	"testing"
	"testing/quick"

	"m5/internal/mem"
	"m5/internal/trace"
)

func TestCachedCounterExactness(t *testing.T) {
	// The defining property: caching moves counts between SRAM and the
	// access-count table but never loses them.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := testRegion(256)
		c := NewCached(CachedConfig{
			Config:  Config{Granularity: PageCounter, Region: r},
			Entries: 16, Ways: 4, // far fewer slots than pages
		})
		truth := map[uint64]uint64{}
		first := uint64(r.Start.Page())
		for i := 0; i < 5000; i++ {
			pg := first + uint64(rng.Intn(256))
			c.Observe(trace.Access{Addr: mem.PFN(pg).Addr()})
			truth[pg]++
		}
		for k, v := range truth {
			if c.Count(k) != v {
				return false
			}
		}
		// Counts() agrees too.
		snap := c.Counts()
		for k, v := range truth {
			if snap[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCachedCounterEvicts(t *testing.T) {
	r := testRegion(64)
	c := NewCached(CachedConfig{
		Config:  Config{Granularity: PageCounter, Region: r},
		Entries: 4, Ways: 2,
	})
	first := uint64(r.Start.Page())
	for i := 0; i < 64; i++ {
		c.Observe(trace.Access{Addr: mem.PFN(first + uint64(i)).Addr()})
	}
	if c.Evictions() == 0 {
		t.Error("tiny cache over many pages must evict")
	}
	if c.Total() != 64 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.HitRate() != 0 {
		t.Errorf("unique-page stream hit rate = %v, want 0", c.HitRate())
	}
}

func TestCachedCounterHitRateOnHotKey(t *testing.T) {
	r := testRegion(64)
	c := NewCached(CachedConfig{
		Config:  Config{Granularity: PageCounter, Region: r},
		Entries: 4, Ways: 2,
	})
	for i := 0; i < 100; i++ {
		c.Observe(trace.Access{Addr: r.Start})
	}
	if c.HitRate() < 0.98 {
		t.Errorf("hot-key hit rate = %v", c.HitRate())
	}
}

func TestCachedCounterOutOfRegionAndReset(t *testing.T) {
	r := testRegion(8)
	c := NewCached(CachedConfig{
		Config:  Config{Granularity: PageCounter, Region: r},
		Entries: 4, Ways: 2,
	})
	c.Observe(trace.Access{Addr: r.End})
	if c.Dropped() != 1 || c.Total() != 0 {
		t.Error("out-of-region access should be dropped")
	}
	c.Observe(trace.Access{Addr: r.Start})
	c.Reset()
	if c.Total() != 0 || c.Count(uint64(r.Start.Page())) != 0 || len(c.Counts()) != 0 {
		t.Error("Reset should clear all state")
	}
}

func TestCachedCounterWordGranularity(t *testing.T) {
	r := testRegion(4)
	c := NewCached(CachedConfig{
		Config:  Config{Granularity: WordCounter, Region: r},
		Entries: 8, Ways: 2,
	})
	w := r.Start.Page().Word(3)
	c.Observe(trace.Access{Addr: w.Addr()})
	c.Observe(trace.Access{Addr: w.Addr()})
	if c.Count(uint64(w)) != 2 {
		t.Errorf("word count = %d", c.Count(uint64(w)))
	}
}

func TestCachedCounterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty region", func() {
		NewCached(CachedConfig{Entries: 4, Ways: 2})
	})
	mustPanic("entries not multiple of ways", func() {
		NewCached(CachedConfig{
			Config:  Config{Region: testRegion(4)},
			Entries: 5, Ways: 2,
		})
	})
}

func TestRegionRotatorCoverage(t *testing.T) {
	// 8 pages split into 2-page regions. Random page order avoids
	// phase-locking between the sweep and the rotation window (a periodic
	// sweep whose period divides the rotation cycle would leave some
	// regions permanently unobserved — worth knowing for real runs).
	span := testRegion(8)
	rot := NewRegionRotator(span, 2*mem.PageSize, PageCounter, 7)
	if rot.Regions() != 4 {
		t.Fatalf("Regions = %d", rot.Regions())
	}
	first := span.Start.Page()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		rot.Observe(trace.Access{Addr: (first + mem.PFN(rng.Intn(8))).Addr()})
	}
	if rot.Rotations() == 0 {
		t.Error("rotator should have rotated")
	}
	counts := rot.Counts()
	if len(counts) != 8 {
		t.Errorf("rotation should cover all 8 pages, got %d", len(counts))
	}
	for k, v := range counts {
		if v == 0 {
			t.Errorf("page %#x counted zero", k)
		}
		if rot.Count(k) != v {
			t.Errorf("Count(%#x) = %d, want %d", k, rot.Count(k), v)
		}
	}
}

func TestRegionRotatorOnlyActiveRegionCounts(t *testing.T) {
	span := testRegion(4)
	rot := NewRegionRotator(span, 2*mem.PageSize, PageCounter, 1000)
	inactive := span.Start + 3*mem.PageSize // region 1 while region 0 active
	rot.Observe(trace.Access{Addr: inactive})
	if rot.Count(uint64(inactive.Page())) != 0 {
		t.Error("inactive region must not count")
	}
	if rot.Active() != 0 {
		t.Error("should still be on region 0")
	}
}

func TestRegionRotatorUnevenTail(t *testing.T) {
	// 5 pages with 2-page regions: last region is 1 page.
	span := testRegion(5)
	rot := NewRegionRotator(span, 2*mem.PageSize, PageCounter, 1)
	if rot.Regions() != 3 {
		t.Fatalf("Regions = %d", rot.Regions())
	}
	last := rot.Counter(2)
	if last.Entries() != 1 {
		t.Errorf("tail region entries = %d, want 1", last.Entries())
	}
}

func TestRegionRotatorCountOutside(t *testing.T) {
	span := testRegion(4)
	rot := NewRegionRotator(span, 2*mem.PageSize, PageCounter, 1)
	if rot.Count(uint64(span.End.Page())) != 0 {
		t.Error("key outside the span should count 0")
	}
}

func TestRegionRotatorPanicsOnUnaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRegionRotator(testRegion(4), 100, PageCounter, 1)
}
