package pac

import (
	"testing"

	"m5/internal/mem"
	"m5/internal/trace"
)

// TestZeroConfigDefaults pins the defaults a zero-value Config resolves
// to: a DefaultWACRegionBytes window from physical address 0 and the §3
// counter widths. Every constructor in this repo must accept its config's
// zero value.
func TestZeroConfigDefaults(t *testing.T) {
	pc := New(Config{})
	cfg := pc.Config()
	if got := cfg.Region.Size(); got != DefaultWACRegionBytes {
		t.Errorf("default region size = %d, want %d", got, uint64(DefaultWACRegionBytes))
	}
	if cfg.Region.Start != 0 {
		t.Errorf("default region start = %v, want 0", cfg.Region.Start)
	}
	if cfg.CounterBits != DefaultPACBits {
		t.Errorf("default PAC counter bits = %d, want %d", cfg.CounterBits, DefaultPACBits)
	}
	wc := New(Config{Granularity: WordCounter})
	if got := wc.Config().CounterBits; got != DefaultWACBits {
		t.Errorf("default WAC counter bits = %d, want %d", got, DefaultWACBits)
	}
}

// TestZeroConfigCounterCounts checks the zero-value counter actually
// counts in-region accesses.
func TestZeroConfigCounterCounts(t *testing.T) {
	pc := New(Config{})
	addr := mem.PhysAddr(3 * mem.PageSize)
	for i := 0; i < 4; i++ {
		pc.Observe(trace.Access{Addr: addr})
	}
	if got := pc.CountPage(addr.Page()); got != 4 {
		t.Errorf("CountPage = %d, want 4", got)
	}
	if pc.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", pc.Dropped())
	}
}

// TestNamedConstructorsMatchNew pins NewPAC/NewWAC to New plus the
// granularity: the uniform-constructor contract of the policy API.
func TestNamedConstructorsMatchNew(t *testing.T) {
	region := mem.NewRange(0, 4*mem.PageSize)
	if got, want := NewPAC(region).Config(), New(Config{Granularity: PageCounter, Region: region}).Config(); got != want {
		t.Errorf("NewPAC config = %+v, want %+v", got, want)
	}
	if got, want := NewWAC(region).Config(), New(Config{Granularity: WordCounter, Region: region}).Config(); got != want {
		t.Errorf("NewWAC config = %+v, want %+v", got, want)
	}
}
