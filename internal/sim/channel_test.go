package sim

import (
	"math"
	"testing"
)

// N back-to-back 64B accesses on a saturated channel must occupy it for
// exactly N × serviceNs (within 1ns): the channel clock is integer
// picoseconds, so the fractional-ns service times (64B at 150GB/s ≈
// 0.427ns) cannot drift the way the old float64+truncation clock did
// over millions of accesses.
func TestChannelSaturatedDelayIsNTimesService(t *testing.T) {
	cases := []struct {
		name         string
		bandwidthGBs float64
	}{
		{"exact-4ns", 16},      // 64/16 = 4ns per access
		{"ddr-default", 150},   // 0.42667ns: the drift-prone fraction
		{"cxl-default", 21},    // 3.0476ns
		{"slow-fraction", 0.5}, // 128ns
	}
	const n = 3_000_000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newChannel(tc.bandwidthGBs, nil)
			for i := 0; i < n; i++ {
				c.serve(0) // all issued at t=0: fully saturated
			}
			// Total busy time in ns, from the ps-precision clock.
			busyNs := float64(c.nextFree) / 1000
			wantNs := float64(n) * 64 / tc.bandwidthGBs
			if diff := math.Abs(busyNs - wantNs); diff > 1 {
				t.Fatalf("%d back-to-back serves occupy %.3fns, want %.3fns (drift %.3fns)",
					n, busyNs, wantNs, busyNs-wantNs)
			}
			// The next access's queueing delay equals the backlog within
			// the 1ns reporting granularity.
			d := c.serve(0)
			if diff := math.Abs(float64(d) - wantNs); diff > 1 {
				t.Fatalf("delay after %d serves is %dns, want %.3fns ±1ns", n, d, wantNs)
			}
		})
	}
}

// An idle channel adds zero delay: accesses spaced wider than the service
// time never queue.
func TestChannelIdleAddsZeroDelay(t *testing.T) {
	c := newChannel(21, nil) // ~3.05ns service
	for i := uint64(0); i < 1000; i++ {
		now := i * 10 // 10ns apart > 3.05ns service
		if d := c.serve(now); d != 0 {
			t.Fatalf("idle channel charged %dns delay at t=%dns", d, now)
		}
	}
}

// The reported whole-ns delay must never exceed the true ps-precision
// backlog (truncation may under-report by <1ns but never over-report).
func TestChannelDelayNeverExceedsBacklog(t *testing.T) {
	c := newChannel(150, nil)
	for i := uint64(0); i < 100_000; i++ {
		now := i / 10 // ten accesses per ns: heavy saturation
		backlogPs := uint64(0)
		if c.nextFree > now*1000 {
			backlogPs = c.nextFree - now*1000
		}
		if d := c.serve(now); d*1000 > backlogPs {
			t.Fatalf("access %d: delay %dns exceeds %dps backlog", i, d, backlogPs)
		}
	}
}
