package sim

import (
	"testing"

	"m5/internal/baseline"
	"m5/internal/cache"
	"m5/internal/ifmm"
	m5mgr "m5/internal/m5"
	"m5/internal/mem"
	"m5/internal/tiermem"
	"m5/internal/trace"
	"m5/internal/tracker"
	"m5/internal/workload"
)

// Integration tests: cross-module invariants of the assembled machine that
// no single package test can check.

func TestAccountingConsistency(t *testing.T) {
	// System-level counters, node counters, and runner counters must tell
	// one coherent story after a mixed run.
	wl := workload.MustNew("mcf", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{
		Workload:  wl,
		EnablePAC: true,
		HPT:       &tracker.Config{Algorithm: tracker.CMSketch, Entries: 8192, K: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mgr := m5mgr.NewManager(r.Sys, r.Ctrl,
		m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly})
	r.SetDaemon(mgr)
	res := r.Run(1_000_000)

	// Node read counters match runner-side DRAM read counts.
	if got := r.Sys.Node(tiermem.NodeDDR).Reads(); got != res.DRAMReads[tiermem.NodeDDR] {
		t.Errorf("DDR reads: node=%d runner=%d", got, res.DRAMReads[tiermem.NodeDDR])
	}
	if got := r.Sys.Node(tiermem.NodeCXL).Reads(); got != res.DRAMReads[tiermem.NodeCXL] {
		t.Errorf("CXL reads: node=%d runner=%d", got, res.DRAMReads[tiermem.NodeCXL])
	}
	// The CXL device MC served exactly the CXL reads + CXL writebacks.
	wantDev := res.DRAMReads[tiermem.NodeCXL] + res.DRAMWrites[tiermem.NodeCXL]
	if got := r.Ctrl.Device.Reads() + r.Ctrl.Device.Writes(); got != wantDev {
		t.Errorf("device MC accesses = %d, want %d", got, wantDev)
	}
	// PAC saw every device access (it monitors the whole span).
	if r.Ctrl.PAC.Total() != wantDev {
		t.Errorf("PAC total = %d, want %d", r.Ctrl.PAC.Total(), wantDev)
	}
	if r.Ctrl.PAC.Dropped() != 0 {
		t.Errorf("PAC dropped %d in-span accesses", r.Ctrl.PAC.Dropped())
	}
	// Promotions - demotions equals DDR residency (all pages started CXL).
	resident := r.Sys.ResidentPages(tiermem.NodeDDR)
	if res.Promotions-res.Demotions != resident {
		t.Errorf("promotions %d - demotions %d != DDR resident %d",
			res.Promotions, res.Demotions, resident)
	}
	// Node occupancy agrees with the page table.
	if r.Sys.Node(tiermem.NodeDDR).UsedPages() != resident {
		t.Errorf("node used %d != table resident %d",
			r.Sys.Node(tiermem.NodeDDR).UsedPages(), resident)
	}
}

func TestCgroupLimitNeverExceeded(t *testing.T) {
	for _, policy := range []string{"anb", "damon", "m5"} {
		wl := workload.MustNew("roms", workload.ScaleTiny, 2)
		cfg := Config{Workload: wl, DDRFraction: 0.3}
		if policy == "m5" {
			cfg.HPT = &tracker.Config{Algorithm: tracker.CMSketch, Entries: 8192, K: 32}
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		footPages := int(wl.Footprint() / 4096)
		switch policy {
		case "anb":
			r.SetDaemon(baseline.NewANB(r.Sys, baseline.ANBConfig{
				SamplePages: footPages / 8, Migrate: true,
			}))
		case "damon":
			r.SetDaemon(baseline.NewDAMON(r.Sys, baseline.DAMONConfig{
				Migrate: true, MigrateBatch: footPages,
			}))
		case "m5":
			r.SetDaemon(m5mgr.NewManager(r.Sys, r.Ctrl,
				m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
		}
		r.Run(1_500_000)
		limit := r.Sys.Node(tiermem.NodeDDR).Limit()
		if used := r.Sys.Node(tiermem.NodeDDR).UsedPages(); used > limit {
			t.Errorf("%s: DDR used %d exceeds cgroup limit %d", policy, used, limit)
		}
		r.Close()
	}
}

func TestHPTAgreesWithPACOnSteadyStream(t *testing.T) {
	// End-to-end: the HPT's top pages must be among PAC's exact top pages
	// after a long profiling run (the basis of every ratio experiment).
	wl := workload.MustNew("lib.", workload.ScaleTiny, 3)
	r, err := NewRunner(Config{
		Workload:  wl,
		EnablePAC: true,
		HPT:       &tracker.Config{Algorithm: tracker.CMSketch, Entries: 32 * 1024, K: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Run(1_000_000)
	top := r.Ctrl.HPT.Peek()
	if len(top) == 0 {
		t.Fatal("HPT empty")
	}
	exactTop := r.Ctrl.PAC.TopK(64)
	exactSet := map[uint64]bool{}
	for _, kc := range exactTop {
		exactSet[kc.Key] = true
	}
	matches := 0
	for _, e := range top {
		if exactSet[e.Addr] {
			matches++
		}
	}
	if matches*2 < len(top) {
		t.Errorf("only %d of HPT's top-%d are in PAC's exact top-64", matches, len(top))
	}
}

func TestWordRemapConservesAccessCount(t *testing.T) {
	// With IFMM installed, total DRAM reads are preserved — they just
	// move between tiers.
	run := func(withIFMM bool) Result {
		wl := workload.MustNew("redis", workload.ScaleTiny, 4)
		r, err := NewRunner(Config{Workload: wl})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if withIFMM {
			r.SetWordRemap(ifmm.New(r.Sys.CXLSpan(), r.Sys.CXLSpan().Words(), 0))
		}
		return r.Run(600_000)
	}
	plain := run(false)
	remapped := run(true)
	plainTotal := plain.DRAMReads[0] + plain.DRAMReads[1]
	remapTotal := remapped.DRAMReads[0] + remapped.DRAMReads[1]
	if plainTotal != remapTotal {
		t.Errorf("total DRAM reads changed under IFMM: %d vs %d", plainTotal, remapTotal)
	}
	if remapped.DRAMReads[tiermem.NodeDDR] == 0 {
		t.Error("IFMM should shift reads to DDR")
	}
}

func TestTraceFileRoundTripThroughTracker(t *testing.T) {
	// Record the device stream, replay from the serialized form, and
	// check a tracker sees identical state — the m5trace workflow.
	wl := workload.MustNew("roms", workload.ScaleTiny, 5)
	r, err := NewRunner(Config{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var recorded []trace.Access
	live := tracker.NewHPT(tracker.CMSketch, 4096)
	r.Ctrl.Device.Attach(live)
	r.Ctrl.Device.Attach(trace.SinkFunc(func(a trace.Access) {
		recorded = append(recorded, a)
	}))
	r.Run(400_000)

	replayed := tracker.NewHPT(tracker.CMSketch, 4096)
	for _, a := range recorded {
		replayed.Observe(a)
	}
	liveTop := live.Peek()
	replayTop := replayed.Peek()
	if len(liveTop) != len(replayTop) {
		t.Fatalf("top-K sizes differ: %d vs %d", len(liveTop), len(replayTop))
	}
	for i := range liveTop {
		if liveTop[i] != replayTop[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, liveTop[i], replayTop[i])
		}
	}
}

func TestMigrationMovesTrafficBetweenSpans(t *testing.T) {
	// After promoting a page, its physical address must fall in the DDR
	// span and subsequent misses must count against DDR.
	wl := workload.MustNew("mcf", workload.ScaleTiny, 6)
	r, err := NewRunner(Config{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Run(10_000)
	v := r.Base()
	if err := r.Sys.Migrate(v, tiermem.NodeDDR); err != nil {
		t.Fatal(err)
	}
	tr := r.Sys.Translate(0, v.Addr(), false)
	if tr.Node != tiermem.NodeDDR {
		t.Error("translated node should be DDR")
	}
	if !r.Sys.Node(tiermem.NodeDDR).Span().Contains(tr.Phys) {
		t.Error("physical address should be in the DDR span")
	}
	if r.Sys.NodeOfAddr(tr.Phys) != tiermem.NodeDDR {
		t.Error("NodeOfAddr should agree")
	}
}

func TestPFNStabilityUnderProfiling(t *testing.T) {
	// In profiling mode nothing migrates, so a PFN recorded early still
	// names the same page later — the assumption behind hot-list scoring.
	wl := workload.MustNew("redis", workload.ScaleTiny, 7)
	r, err := NewRunner(Config{Workload: wl, EnablePAC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	anb := baseline.NewANB(r.Sys, baseline.ANBConfig{SamplePages: 64})
	r.SetDaemon(anb)
	r.Run(200_000)
	early := map[mem.PFN]tiermem.VPN{}
	r.Sys.PageTable().ForEach(func(v tiermem.VPN, pte *tiermem.PTE) bool {
		if pte.Valid {
			early[pte.Frame] = v
		}
		return true
	})
	r.Run(400_000)
	r.Sys.PageTable().ForEach(func(v tiermem.VPN, pte *tiermem.PTE) bool {
		if pte.Valid && early[pte.Frame] != v {
			t.Fatalf("frame %v moved from VPN %d to %d in profiling mode",
				pte.Frame, early[pte.Frame], v)
		}
		return true
	})
	if r.Sys.Promotions() != 0 {
		t.Error("profiling mode migrated pages")
	}
}

func TestRowBufferModel(t *testing.T) {
	run := func(rowBuffer bool, bench string) Result {
		wl := workload.MustNew(bench, workload.ScaleTiny, 9)
		r, err := NewRunner(Config{Workload: wl, RowBuffer: rowBuffer})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		res := r.Run(500_000)
		if rowBuffer {
			ch := r.DRAMChannel(tiermem.NodeCXL)
			if ch == nil {
				t.Fatal("row-buffer channel missing")
			}
			if ch.Hits()+ch.Misses()+ch.Conflicts() != res.DRAMReads[tiermem.NodeCXL] {
				t.Errorf("channel served %d, runner counted %d reads",
					ch.Hits()+ch.Misses()+ch.Conflicts(), res.DRAMReads[tiermem.NodeCXL])
			}
		} else if r.DRAMChannel(tiermem.NodeCXL) != nil {
			t.Fatal("flat model should have no channel")
		}
		return res
	}
	flat := run(false, "cactu")
	rb := run(true, "cactu")
	if rb.ElapsedNs == flat.ElapsedNs {
		t.Error("row-buffer model should change timing")
	}
	// Note: cactu's interleaved field streams conflict in the row
	// buffers (multiple arrays sharing banks), so the row-buffer model
	// may be slower than the flat model here — which is the point of
	// modelling it. The directional hit-rate properties are pinned in
	// package dram's tests.
}

func TestPrefetchTrafficVisibleToTrackers(t *testing.T) {
	// With the next-line prefetcher on, PAC must count prefetch fills —
	// the CXL controller cannot distinguish demand from prefetch.
	wl := workload.MustNew("mcf", workload.ScaleTiny, 11)
	r, err := NewRunner(Config{
		Workload:  wl,
		EnablePAC: true,
		Cache: cache.HierarchyConfig{
			L1:               cache.Config{SizeBytes: 8 << 10, Ways: 2},
			L2:               cache.Config{SizeBytes: 32 << 10, Ways: 4},
			LLCWayBytes:      8 << 10,
			LLCWays:          8,
			NextLinePrefetch: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res := r.Run(300_000)
	if r.Cache.Prefetches() == 0 {
		t.Fatal("prefetcher idle")
	}
	want := res.DRAMReads[tiermem.NodeCXL] + res.DRAMWrites[tiermem.NodeCXL]
	if got := r.Ctrl.PAC.Total(); got != want {
		t.Errorf("PAC total %d != CXL traffic %d (prefetches dropped?)", got, want)
	}
	// Cache-level and runner-level read counts agree.
	if r.Cache.DRAMReads() != res.DRAMReads[0]+res.DRAMReads[1] {
		t.Errorf("cache reads %d != runner reads %d",
			r.Cache.DRAMReads(), res.DRAMReads[0]+res.DRAMReads[1])
	}
}
