// Epoch fast-forward: between event horizons (daemon ticks and
// context-switch TLB flushes) the machine evolves without any scheduled
// intervention, so whole tape segments execute through three vectorized
// kernels instead of the scalar per-access loop:
//
//  1. translate (ffTranslate): resolves every virtual address through the
//     TLB/page-table model in stream order, exactly as the scalar loop
//     would — faults, shootdowns, and inline fault-hook promotions all
//     run here — while a running upper bound on the clock proves no event
//     horizon can fire before each non-final access. Consecutive accesses
//     to one page short-circuit through the TLB memo (TLB.RepeatHit).
//  2. classify (cache.AccessBatch): runs the physical stream through the
//     cache hierarchy in one pass over the packed tag/LRU arrays,
//     emitting a class byte per access plus an ordered writeback stream.
//  3. commit (ffCommit): replays the exact clock arithmetic — serve
//     latencies, writeback charges, DRAM/CXL device traffic, sink
//     observes, op-latency samples, kernel-time attribution — and runs
//     the (possibly firing) event checks on the segment's final access
//     only; interior accesses provably cannot fire them.
//
// Soundness of the truncation: the scalar loop evaluates the ctx/tick
// checks at the access's post-serve clock (kernel time is added after
// the checks). ffTranslate tracks ub, an upper bound on that clock,
// using the actual translate extra time, the actual kernel delta, and
// static bounds for the serve phase (Runner.maxServeNs) and the sink
// observe charges (5 observes × Σ sink bounds). An access is interior
// only if ub stayed below the horizon at both its post-serve and
// post-kernel checkpoints — so no interior access can reach an event
// horizon, and reordering its device/sink work after the remaining
// translations is invisible: translations never read tracker, cache, or
// bandwidth state, and sinks/devices never change translations (every
// mutation that could — migration, flush — is an event).
//
// The result is byte-identical to exact mode on every headline metric
// and obs counter; the equivalence tests pin this property.
package sim

import (
	"m5/internal/cache"
	"m5/internal/mem"
	"m5/internal/tiermem"
	"m5/internal/trace"
	"m5/internal/workload"
)

// ffState is the fast-forward engine's reusable scratch, sized once for
// the runner's batch size so the per-batch paths never allocate.
type ffState struct {
	cols workload.Columns
	// Per-access translate results, indexed relative to the segment
	// start: physical address, page-walk extra latency, kernel delta.
	phys  []mem.PhysAddr
	extra []uint64
	kern  []uint64
	// writes is the segment-relative write bitset handed to the cache
	// classify kernel (re-aligned from the batch-relative cols bitset).
	writes []uint64
	class  []cache.AccessClass
	wb     []mem.PhysAddr
	// opIdx cursors cols.OpEnds across the segments of one batch.
	opIdx int
	// memoVPN/memoBase mirror the TLB memo: the page and frame base of
	// the most recent full translation. Trustworthy only when
	// TLB.RepeatHit(memoVPN) succeeds — every frame change shoots down
	// the TLB entry, which drops the memo.
	memoVPN  tiermem.VPN
	memoBase mem.PhysAddr
	memoOK   bool
}

// ffInit builds the engine scratch (once per runner).
func (r *Runner) ffInit() *ffState {
	ff := &ffState{
		phys:   make([]mem.PhysAddr, r.batchSize),
		extra:  make([]uint64, r.batchSize),
		kern:   make([]uint64, r.batchSize),
		writes: make([]uint64, (r.batchSize+63)>>6),
		class:  make([]cache.AccessClass, r.batchSize),
		wb:     make([]mem.PhysAddr, 0, 64),
	}
	ff.cols.Grow(r.batchSize)
	r.ffs = ff
	return ff
}

// stepBatchFF is StepBatch's fast-forward body: pull one columnar batch
// and execute all of it, segment by segment, before returning — the
// runner never holds pulled-but-unexecuted accesses across calls, so
// generator checkpoints (Consumed counts) stay in lockstep with exact
// mode.
//m5:hotpath
func (r *Runner) stepBatchFF(max int) int {
	ff := r.ffs
	if ff == nil {
		//m5:coldpath one-time scratch construction on first engaged batch.
		ff = r.ffInit()
	}
	want := max
	if want > r.batchSize {
		want = r.batchSize
	}
	n := workload.NextColumns(r.gen, r.batch, &ff.cols, want)
	if n == 0 {
		return 0
	}
	ff.opIdx = 0
	for s := 0; s < n; {
		m := r.ffTranslate(ff, s, n)
		wbs := r.Cache.AccessBatch(ff.phys[:m], ff.writes, ff.class[:m], ff.wb[:0])
		ff.wb = wbs[:0]
		r.ffCommit(ff, s, m, wbs)
		s += m
	}
	return n
}

// ffTranslate resolves accesses [s, n) of the batch in stream order
// until the clock upper bound reaches the next event horizon, and
// returns the segment length m >= 1. Accesses [s, s+m-1) provably fire
// no ctx flush or daemon tick; access s+m-1 may, and ffCommit runs the
// exact checks on it.
//m5:hotpath
func (r *Runner) ffTranslate(ff *ffState, s, n int) int {
	var (
		base    = r.base.Addr()
		tlb     = r.Sys.TLB(0)
		horizon = ^uint64(0)
		maxObs  = 5 * r.sinkBoundNs
		tr      tiermem.TranslateResult
	)
	if r.daemon != nil && r.nextTick < horizon {
		horizon = r.nextTick
	}
	if r.ctxNs > 0 && r.nextCtx < horizon {
		horizon = r.nextCtx
	}
	ub := r.clockNs
	m := 0
	for i := s; i < n; i++ {
		j := i - s
		if j&63 == 0 {
			ff.writes[uint(j)>>6] = 0
		}
		write := ff.cols.Writes[uint(i)>>6]&(1<<(uint(i)&63)) != 0
		if write {
			ff.writes[uint(j)>>6] |= 1 << (uint(j) & 63)
		}
		va := base + tiermem.VirtAddr(ff.cols.Offs[i])
		v := va.Page()
		if ff.memoOK && v == ff.memoVPN && tlb.RepeatHit(v) {
			// Same page as the last full translation and the TLB entry is
			// untouched: the frame cannot have changed (migration always
			// shoots down), so this is exactly the scalar TLB-hit path.
			ff.phys[j] = ff.memoBase + mem.PhysAddr(va.Offset())
			ff.extra[j] = 0
			ff.kern[j] = 0
			ub += r.maxServeNs
		} else {
			kernelBefore := r.Sys.KernelNs()
			r.Sys.TranslateInto(0, va, write, &tr)
			ff.phys[j] = tr.Phys
			ff.extra[j] = tr.ExtraNs
			ff.kern[j] = r.Sys.KernelNs() - kernelBefore
			ff.memoVPN = v
			ff.memoBase = tr.Phys - mem.PhysAddr(va.Offset())
			ff.memoOK = true
			ub += tr.ExtraNs + r.maxServeNs
		}
		m = j + 1
		// Post-serve checkpoint: bounds the clock at which this access
		// evaluates the ctx/tick checks in the scalar loop.
		if ub >= horizon {
			break
		}
		// Post-kernel checkpoint: bounds the clock the next access starts
		// from (translate kernel plus worst-case sink observe charges).
		ub += ff.kern[j] + maxObs
		if ub >= horizon {
			break
		}
	}
	return m
}

// ffCommit replays the exact per-access clock arithmetic and side
// effects for segment [s, s+m) using the translate results and cache
// classes, mirroring runBatch step for step. Only the final access runs
// the ctx/tick event checks — interior accesses were proven unable to
// fire them.
//m5:hotpath
func (r *Runner) ffCommit(ff *ffState, s, m int, wbs []mem.PhysAddr) {
	var (
		hasSinks = len(r.sinks) > 0
		daemon   = r.daemon
		ctxOn    = r.ctxNs > 0
		ops      = ff.cols.OpEnds
		scratch  trace.Access
		wbPos    = 0
	)
	for j := 0; j < m; j++ {
		r.accesses++
		kern := ff.kern[j]
		r.clockNs += ff.extra[j]
		c := ff.class[j]
		phys := ff.phys[j]
		if lvl := c.Level(); lvl != cache.HitMemory {
			r.clockNs += r.latHit[lvl]
		} else {
			node := r.Sys.NodeOfAddr(phys)
			r.Sys.Node(node).CountRead() //m5:unitcredit exact replay commit: one access, weight 1
			r.dramReads[node]++
			r.clockNs += r.dramReadLatency(node, phys)
			if node == tiermem.NodeCXL || hasSinks {
				write := ff.writes[uint(j)>>6]&(1<<(uint(j)&63)) != 0
				scratch = trace.Access{Time: r.clockNs, Addr: phys, Write: write}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.Access(scratch) //m5:unitcredit exact replay commit: one access, weight 1
				}
				if hasSinks {
					kernelBefore := r.Sys.KernelNs()
					r.sinks.Observe(scratch) //m5:unitcredit exact replay commit: one access, weight 1
					kern += r.Sys.KernelNs() - kernelBefore
				}
			}
		}
		for k := c.Writebacks(); k > 0; k-- {
			wb := wbs[wbPos]
			wbPos++
			node := r.Sys.CountDRAMAccess(wb, true)
			r.dramWrites[node]++
			r.clockNs += r.costs.DRAMWriteNs
			if node == tiermem.NodeCXL || hasSinks {
				scratch = trace.Access{Time: r.clockNs, Addr: wb, Write: true}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.Access(scratch) //m5:unitcredit exact replay commit: one access, weight 1
				}
				if hasSinks {
					kernelBefore := r.Sys.KernelNs()
					r.sinks.Observe(scratch) //m5:unitcredit exact replay commit: one access, weight 1
					kern += r.Sys.KernelNs() - kernelBefore
				}
			}
		}
		if c.Prefetched() {
			pf := (phys &^ (mem.WordSize - 1)) + mem.WordSize
			node := r.Sys.CountDRAMAccess(pf, false)
			r.dramReads[node]++
			if node == tiermem.NodeCXL || hasSinks {
				scratch = trace.Access{Time: r.clockNs, Addr: pf}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.Access(scratch) //m5:unitcredit exact replay commit: one access, weight 1
				}
				if hasSinks {
					kernelBefore := r.Sys.KernelNs()
					r.sinks.Observe(scratch) //m5:unitcredit exact replay commit: one access, weight 1
					kern += r.Sys.KernelNs() - kernelBefore
				}
			}
		}
		if ff.opIdx < len(ops) && int(ops[ff.opIdx]) == s+j {
			ff.opIdx++
			r.opLat.Add(float64(r.clockNs - r.opStart))
			r.opStart = r.clockNs
		}
		if j == m-1 {
			if ctxOn && r.clockNs >= r.nextCtx {
				r.Sys.TLB(0).Flush()
				r.nextCtx = r.clockNs + r.ctxNs
			}
			if daemon != nil && r.clockNs >= r.nextTick {
				tickKernelBefore := r.Sys.KernelNs()
				daemon.Tick(r.clockNs)
				r.nextTick = r.clockNs + daemon.PeriodNs()
				tick := r.Sys.KernelNs() - tickKernelBefore
				r.obsTickKernel.Observe(tick)
				kern += tick
			}
		}
		r.clockNs += kern
	}
}
