package sim

import (
	"reflect"
	"testing"

	"m5/internal/workload"
	"m5/internal/workload/tape"
)

// TestTapeRunMatchesLive pins byte-identical simulation under tape
// replay: for every catalog benchmark, a runner fed from a tape cursor
// produces exactly the sim.Result a live-generated runner produces —
// every counter, latency percentile, and clock.
func TestTapeRunMatchesLive(t *testing.T) {
	const accesses = 60_000
	pool := tape.NewPool(0, nil)
	defer pool.Close()
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			live := newRunner(t, name, Config{})
			want := live.Run(accesses)

			taped, err := pool.Open(name, workload.ScaleTiny, 1)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(Config{Workload: taped})
			if err != nil {
				taped.Close()
				t.Fatal(err)
			}
			t.Cleanup(r.Close)
			got := r.Run(accesses)

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("taped result diverges from live:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestForkFromTapeCursor pins the Reopener fast path: a checkpoint taken
// on a tape-fed runner forks through an O(1) cursor seek, and the fork
// behaves exactly like a fork of a live-generated runner.
func TestForkFromTapeCursor(t *testing.T) {
	const warm, run = 50_000, 30_000
	pool := tape.NewPool(0, nil)
	defer pool.Close()

	live := newRunner(t, "redis", Config{})
	live.Run(warm)
	cpLive, err := live.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	forkLive, err := cpLive.Fork()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(forkLive.Close)
	want := forkLive.Run(run)

	taped, err := pool.Open("redis", workload.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{Workload: taped})
	if err != nil {
		taped.Close()
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	r.Run(warm)
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := cp.Fork()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fork.Close)
	got := fork.Run(run)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tape-forked result diverges from live fork:\n got %+v\nwant %+v", got, want)
	}
}
