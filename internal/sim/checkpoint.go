package sim

import (
	"fmt"

	"m5/internal/cache"
	"m5/internal/cxl"
	"m5/internal/stats"
	"m5/internal/tiermem"
	"m5/internal/workload"
)

// Checkpoint is a deep-cloned snapshot of a warmed runner: the generator's
// replay position plus the full machine state (memory system, CXL
// controller, cache hierarchy, latency reservoir, and the runner's own
// clocks and counters). Experiment harnesses warm one runner per
// (workload, scale, seed) cell, checkpoint it, and Fork per-policy cells
// from the checkpoint instead of re-simulating the warmup — each fork
// continues bit-identically to a from-scratch runner warmed the same way.
type Checkpoint struct {
	cfg Config
	gen workload.Checkpoint
	// reopen, when the checkpointed generator supports it (tape replay
	// cursors do), forks the access stream by an O(1) seek instead of
	// NewAt's rebuild-and-fast-forward.
	reopen workload.Reopener
	sys    tiermem.SystemSnapshot
	ctrl   cxl.Snapshot
	cache  cache.Snapshot
	opLat  stats.ReservoirSnapshot
	// footprint is the workload's byte footprint, captured at checkpoint
	// time so checkpoint caches can size per-fork daemons without
	// reopening the generator.
	footprint uint64

	clockNs    uint64
	nextCtx    uint64
	opStart    uint64
	accesses   uint64
	dramReads  [2]uint64
	dramWrites [2]uint64
	// estPrior carries the sampled tier's measured mean user-side
	// ns/access into forks, so short forked spans can run thinned
	// (always 0 for exact-mode runners).
	estPrior float64
}

// Checkpoint captures the runner's state. It refuses runners whose state
// extends beyond the engine's deep-clone reach: an installed daemon or
// word remapper, attached miss sinks, the row-buffer DRAM model, a
// metrics registry, or a generator not built through the workload catalog.
// The intended protocol is: build a bare runner, warm it, checkpoint, then
// install per-policy state on each fork.
func (r *Runner) Checkpoint() (*Checkpoint, error) {
	switch {
	case r.daemon != nil:
		return nil, fmt.Errorf("sim: cannot checkpoint a runner with a daemon installed")
	case r.remap != nil:
		return nil, fmt.Errorf("sim: cannot checkpoint a runner with a word remapper installed")
	case len(r.sinks) > 0:
		return nil, fmt.Errorf("sim: cannot checkpoint a runner with miss sinks attached")
	case r.channels[0] != nil || r.channels[1] != nil:
		return nil, fmt.Errorf("sim: cannot checkpoint a runner using the row-buffer DRAM model")
	case r.metrics != nil:
		return nil, fmt.Errorf("sim: cannot checkpoint a runner with a metrics registry")
	}
	genCp, ok := workload.CheckpointOf(r.gen)
	if !ok {
		return nil, fmt.Errorf("sim: workload %q does not support replay checkpoints", r.gen.Name())
	}
	reopen, _ := r.gen.(workload.Reopener)
	return &Checkpoint{
		cfg:        r.cfg,
		gen:        genCp,
		reopen:     reopen,
		footprint:  r.gen.Footprint(),
		sys:        r.Sys.Snapshot(),
		ctrl:       r.Ctrl.Snapshot(),
		cache:      r.Cache.Snapshot(),
		opLat:      r.opLat.Snapshot(),
		clockNs:    r.clockNs,
		nextCtx:    r.nextCtx,
		opStart:    r.opStart,
		accesses:   r.accesses,
		dramReads:  r.dramReads,
		dramWrites: r.dramWrites,
		estPrior:   r.estPrior,
	}, nil
}

// Footprint reports the checkpointed workload's footprint in bytes.
func (c *Checkpoint) Footprint() uint64 { return c.footprint }

// Fork builds a fresh runner positioned exactly at the checkpoint: a new
// generator fast-forwarded to the replay position, a machine rebuilt from
// the retained config, and every layer restored from the deep clones. The
// checkpoint can be forked any number of times; forks share no mutable
// state with each other or with the original runner. The caller installs
// the per-fork daemon afterwards (SetDaemon schedules its first tick from
// the restored clock) and owns closing the fork's generator.
func (c *Checkpoint) Fork() (*Runner, error) {
	var gen workload.Generator
	var err error
	if c.reopen != nil {
		gen, err = c.reopen.ReopenAt(c.gen.Consumed)
	} else {
		gen, err = workload.NewAt(c.gen)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: forking checkpoint: %w", err)
	}
	cfg := c.cfg
	cfg.Workload = gen
	r, err := NewRunner(cfg)
	if err != nil {
		gen.Close()
		return nil, fmt.Errorf("sim: forking checkpoint: %w", err)
	}
	r.Sys.Restore(c.sys)
	r.Ctrl.Restore(c.ctrl)
	r.Cache.Restore(c.cache)
	r.opLat.Restore(c.opLat)
	r.clockNs = c.clockNs
	r.nextCtx = c.nextCtx
	r.opStart = c.opStart
	r.accesses = c.accesses
	r.dramReads = c.dramReads
	r.dramWrites = c.dramWrites
	r.estPrior = c.estPrior
	return r, nil
}
