package sim

import (
	"testing"

	m5mgr "m5/internal/m5"
	"m5/internal/tiermem"
	"m5/internal/tracker"
	"m5/internal/workload"
)

func newMulti(t *testing.T, bench string, n int, cfg MultiConfig) *MultiRunner {
	t.Helper()
	cfg.Instances = n
	cfg.MakeWorkload = func(i int) workload.Generator {
		return workload.MustNew(bench, workload.ScaleTiny, int64(i+1))
	}
	m, err := NewMultiRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestMultiRunnerBasics(t *testing.T) {
	m := newMulti(t, "mcf", 4, MultiConfig{})
	res := m.Run(100_000)
	if res.Cores != 4 {
		t.Errorf("Cores = %d", res.Cores)
	}
	if res.Accesses != 400_000 {
		t.Errorf("Accesses = %d, want 400k", res.Accesses)
	}
	if res.ElapsedNs == 0 {
		t.Error("time must advance")
	}
	if res.DRAMReads[tiermem.NodeCXL] == 0 {
		t.Error("expected CXL traffic")
	}
	// Per-core TLBs and arenas: the system has 4 cores.
	if m.Sys.Cores() != 4 {
		t.Errorf("system cores = %d", m.Sys.Cores())
	}
}

func TestMultiRunnerConfigValidation(t *testing.T) {
	if _, err := NewMultiRunner(MultiConfig{}); err == nil {
		t.Error("missing factory should error")
	}
	if _, err := NewMultiRunner(MultiConfig{Instances: 2}); err == nil {
		t.Error("missing factory should error")
	}
}

func TestMultiArenasAreDisjoint(t *testing.T) {
	m := newMulti(t, "redis", 3, MultiConfig{})
	// Bases must be strictly increasing by footprint.
	prevEnd := tiermem.VPN(0)
	for i := 0; i < 3; i++ {
		b := m.base(i)
		if b != prevEnd {
			t.Errorf("instance %d base = %d, want %d", i, b, prevEnd)
		}
		prevEnd = b + tiermem.VPN((m.cores[i].gen.Footprint()+4095)/4096)
	}
	if int(prevEnd) != m.Sys.PageTable().Len() {
		t.Errorf("arenas cover %d pages, table has %d", prevEnd, m.Sys.PageTable().Len())
	}
}

func TestMultiCausalOrder(t *testing.T) {
	// After a run, core clocks should be close to each other (the
	// min-clock scheduler keeps them in lockstep) — no core runs far
	// ahead of the shared state it touches.
	m := newMulti(t, "cc", 4, MultiConfig{})
	m.Run(50_000)
	var min, max uint64 = ^uint64(0), 0
	for _, c := range m.cores {
		if c.clockNs < min {
			min = c.clockNs
		}
		if c.clockNs > max {
			max = c.clockNs
		}
	}
	if min == 0 {
		t.Fatal("cores did not run")
	}
	// Spread stays within 25% of the slower core's span (identical
	// workloads, different seeds).
	if float64(max-min) > 0.25*float64(max) {
		t.Errorf("core clocks diverged: min=%d max=%d", min, max)
	}
}

func TestMultiBandwidthContention(t *testing.T) {
	// The same total work on a 1GB/s CXL channel must take longer than on
	// the default channel: co-running cores queue on the bottleneck.
	fast := newMulti(t, "mcf", 8, MultiConfig{})
	slow := newMulti(t, "mcf", 8, MultiConfig{CXLBandwidthGBs: 0.5})
	rf := fast.Run(100_000)
	rs := slow.Run(100_000)
	if rs.ElapsedNs <= rf.ElapsedNs {
		t.Errorf("bandwidth-starved run (%d ns) should be slower than default (%d ns)",
			rs.ElapsedNs, rf.ElapsedNs)
	}
}

func TestMultiSharedDaemonMigrates(t *testing.T) {
	m := newMulti(t, "roms", 4, MultiConfig{
		HPT: &tracker.Config{Algorithm: tracker.CMSketch, Entries: 8192, K: 64},
	})
	m.SetDaemon(m5mgr.NewManager(m.Sys, m.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
	m.Run(200_000)
	res := m.Run(400_000)
	if res.Promotions == 0 {
		t.Fatal("shared M5 manager should migrate")
	}
	if res.DRAMReads[tiermem.NodeDDR] == 0 {
		t.Error("promoted pages should serve DDR reads")
	}
	// Cgroup limit respected across all instances.
	if used := m.Sys.Node(tiermem.NodeDDR).UsedPages(); used > m.Sys.Node(tiermem.NodeDDR).Limit() {
		t.Errorf("DDR used %d exceeds limit %d", used, m.Sys.Node(tiermem.NodeDDR).Limit())
	}
}

func TestMultiKVSP99(t *testing.T) {
	m := newMulti(t, "redis", 2, MultiConfig{})
	res := m.Run(200_000)
	if res.OpCount == 0 || res.P99OpNs == 0 {
		t.Error("KVS instances should report op latency")
	}
}

func TestMultiMatchesSingleAtOneInstance(t *testing.T) {
	// One instance through the multi engine behaves like the single
	// runner (same traffic structure; clocks may differ slightly due to
	// the bandwidth channel).
	m := newMulti(t, "mcf", 1, MultiConfig{})
	mres := m.Run(200_000)

	wl := workload.MustNew("mcf", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sres := r.Run(200_000)

	if mres.Accesses != sres.Accesses {
		t.Errorf("accesses differ: %d vs %d", mres.Accesses, sres.Accesses)
	}
	mTot := mres.DRAMReads[0] + mres.DRAMReads[1]
	sTot := sres.DRAMReads[0] + sres.DRAMReads[1]
	if mTot != sTot {
		t.Errorf("DRAM reads differ: %d vs %d", mTot, sTot)
	}
}

func TestChannelQueueing(t *testing.T) {
	c := channel{servicePs: 10_000} // 10ns service
	if d := c.serve(100); d != 0 {
		t.Errorf("idle channel delay = %d", d)
	}
	// Immediately following access at the same instant queues.
	if d := c.serve(100); d != 10 {
		t.Errorf("back-to-back delay = %d, want 10", d)
	}
	// An access after the channel drained sees no delay.
	if d := c.serve(1000); d != 0 {
		t.Errorf("late access delay = %d", d)
	}
}
