package sim

import (
	"fmt"

	"m5/internal/cache"
	"m5/internal/cxl"
	"m5/internal/obs"
	"m5/internal/stats"
	"m5/internal/tiermem"
	"m5/internal/trace"
	"m5/internal/tracker"
	"m5/internal/workload"
)

// MultiConfig assembles a multi-core experiment: N benchmark instances (the
// paper's SPECrate setup runs 8 instances of each SPEC workload, §6) share
// the tiered memory system, the CXL device, and the migration daemon, each
// on its own core with a private cache hierarchy and TLB.
type MultiConfig struct {
	// MakeWorkload builds instance i's generator (same benchmark,
	// different seed, as SPECrate does).
	MakeWorkload func(i int) workload.Generator
	// Instances is the number of co-running copies / cores.
	Instances int
	// DDRFraction sizes the DDR cgroup limit against the *total*
	// footprint (default 0.5, as in the single-core runner).
	DDRFraction float64
	// Costs is the latency model (default DefaultCosts).
	Costs tiermem.CostModel
	// HPT / HWT enable trackers on the shared CXL controller.
	HPT *tracker.Config
	HWT *tracker.Config
	// EnablePAC attaches the exact profiler.
	EnablePAC bool
	// DDRBandwidthGBs / CXLBandwidthGBs cap per-tier 64B-transfer
	// throughput; queueing delay appears once co-running cores saturate a
	// tier (DDR: 4×DDR5-4800 ≈ 150GB/s; CXL: the device's single
	// DDR4-2666 channel ≈ 21GB/s, Table 2 / §6). Zero keeps the default.
	DDRBandwidthGBs float64
	CXLBandwidthGBs float64
	// Metrics, when non-nil, is fanned out exactly as in the single-core
	// Config ("mem", "cxl", a "cache" scope shared by every core's private
	// hierarchy, and "chan.ddr"/"chan.cxl" bandwidth-queue counters).
	Metrics *obs.Registry
}

// channel is a single-server queue modelling one tier's data-transfer
// bandwidth: each 64B access occupies the channel for servicePs
// picoseconds. The previous float64-ns clock truncated `uint64(start)-now`
// on every serve, so the fractional service times (64B at 150GB/s ≈
// 0.427ns) accumulated drift over millions of accesses. The clock is now
// integer picoseconds, and within one busy period the k-th departure is
// computed as base + round(k×servicePs) — one rounding per busy period,
// never a per-serve accumulation.
type channel struct {
	servicePs float64 // exact service time in ps
	base      uint64  // ps: start of the current busy period
	served    uint64  // serves in the current busy period
	nextFree  uint64  // ps: when the channel next idles

	obsServes  *obs.Counter // chan.*.serves
	obsQueued  *obs.Counter // chan.*.queued (serves that waited)
	obsDelayNs *obs.Counter // chan.*.queue_delay_ns (total wait)
}

// newChannel builds a channel serving 64B transfers at the given
// bandwidth. metrics may be nil.
func newChannel(bandwidthGBs float64, metrics *obs.Registry) channel {
	return channel{
		servicePs:  64 * 1000 / bandwidthGBs, //m5:floatok setup-time service period from the config bandwidth
		obsServes:  metrics.Counter("serves"),
		obsQueued:  metrics.Counter("queued"),
		obsDelayNs: metrics.Counter("queue_delay_ns"),
	}
}

// serve returns the extra queueing delay in whole ns for an access issued
// at now (ns) and advances the channel clock, retaining picosecond
// precision internally.
func (c *channel) serve(now uint64) uint64 {
	nowPs := now * 1000
	var delayPs uint64
	if c.nextFree > nowPs {
		delayPs = c.nextFree - nowPs
	} else {
		// Idle: a new busy period begins at now.
		c.base = nowPs
		c.served = 0
	}
	c.served++
	c.nextFree = c.base + uint64(float64(c.served)*c.servicePs+0.5) //m5:floatok per-channel fixed-point recurrence over the integer served count, bit-stable for identical inputs
	c.obsServes.Inc()
	if delayPs > 0 {
		c.obsQueued.Inc()
		c.obsDelayNs.Add(delayPs / 1000)
	}
	return delayPs / 1000
}

// core is one instance's private state.
type core struct {
	id      int
	gen     workload.Generator
	cache   *cache.Hierarchy
	clockNs uint64
	opStart uint64
	opLat   *stats.Reservoir
	done    bool

	accesses uint64
}

// MultiRunner drives N cores over one tiered-memory system in causal
// order: the core with the smallest local clock executes next, so shared
// state (page tables, trackers, bandwidth channels, the daemon) is always
// touched in global time order.
type MultiRunner struct {
	Sys   *tiermem.System
	Ctrl  *cxl.Controller
	cores []*core

	daemon   Daemon
	nextTick uint64
	channels [2]channel
	costs    tiermem.CostModel
	metrics  *obs.Registry

	dramReads  [2]uint64
	dramWrites [2]uint64
}

// NewMultiRunner builds the machine. Instance footprints are allocated
// back to back on CXL.
func NewMultiRunner(cfg MultiConfig) (*MultiRunner, error) {
	if cfg.Instances <= 0 || cfg.MakeWorkload == nil {
		return nil, fmt.Errorf("sim: multi config needs instances and a workload factory")
	}
	if cfg.DDRFraction == 0 {
		cfg.DDRFraction = 0.5
	}
	if cfg.Costs == (tiermem.CostModel{}) {
		cfg.Costs = tiermem.DefaultCosts()
	}
	if cfg.DDRBandwidthGBs == 0 {
		cfg.DDRBandwidthGBs = 150
	}
	if cfg.CXLBandwidthGBs == 0 {
		cfg.CXLBandwidthGBs = 21
	}

	gens := make([]workload.Generator, cfg.Instances)
	var totalPages uint64
	for i := range gens {
		gens[i] = cfg.MakeWorkload(i)
		totalPages += (gens[i].Footprint() + 4095) / 4096
	}
	ddrLimit := uint64(float64(totalPages) * cfg.DDRFraction) //m5:floatok setup-time DDR capacity sizing
	if ddrLimit == 0 {
		ddrLimit = 1
	}
	sys := tiermem.NewSystem(tiermem.Config{
		DDRPages:      ddrLimit + 16,
		CXLPages:      totalPages + 64,
		DDRLimitPages: ddrLimit,
		Cores:         cfg.Instances,
		TLBEntries:    scaledTLBEntries(totalPages / uint64(cfg.Instances)),
		Costs:         cfg.Costs,
		Metrics:       cfg.Metrics.Scope("mem"),
	})
	m := &MultiRunner{
		Sys:     sys,
		costs:   cfg.Costs,
		metrics: cfg.Metrics,
	}
	m.channels[tiermem.NodeDDR] = newChannel(cfg.DDRBandwidthGBs, cfg.Metrics.Scope("chan.ddr"))
	m.channels[tiermem.NodeCXL] = newChannel(cfg.CXLBandwidthGBs, cfg.Metrics.Scope("chan.cxl"))

	// Every core's private hierarchy folds into one shared "cache" scope:
	// the causal-order scheduler touches them one at a time, so the shared
	// counters stay deterministic.
	cacheScope := cfg.Metrics.Scope("cache")
	for i, gen := range gens {
		if _, err := sys.Alloc(int((gen.Footprint()+4095)/4096), tiermem.NodeCXL); err != nil {
			return nil, fmt.Errorf("sim: allocating instance %d arena: %w", i, err)
		}
		cacheCfg := NewScaledCache(gen.Footprint())
		cacheCfg.Metrics = cacheScope
		m.cores = append(m.cores, &core{
			id:    i,
			gen:   gen,
			cache: cache.NewHierarchy(cacheCfg),
			opLat: stats.NewReservoir(1<<13, 23),
		})
	}
	// Arena bases: instance i's pages start after instances 0..i-1.
	m.Ctrl = cxl.NewController(cxl.ControllerConfig{
		Span:      sys.CXLSpan(),
		EnablePAC: cfg.EnablePAC,
		HPT:       cfg.HPT,
		HWT:       cfg.HWT,
		Metrics:   cfg.Metrics.Scope("cxl"),
	})
	return m, nil
}

// base returns instance i's first VPN.
func (m *MultiRunner) base(i int) tiermem.VPN {
	var v tiermem.VPN
	for j := 0; j < i; j++ {
		v += tiermem.VPN((m.cores[j].gen.Footprint() + 4095) / 4096)
	}
	return v
}

// SetDaemon installs the shared migration daemon. Its ticks are charged to
// core 0's clock, as the paper pins the migration processes to a core that
// also runs one benchmark instance (§6).
func (m *MultiRunner) SetDaemon(d Daemon) {
	m.daemon = d
	if d != nil {
		m.nextTick = m.cores[0].clockNs + d.PeriodNs()
	}
}

// next returns the runnable core with the smallest clock, or nil.
func (m *MultiRunner) next() *core {
	var pick *core
	for _, c := range m.cores {
		if c.done {
			continue
		}
		if pick == nil || c.clockNs < pick.clockNs {
			pick = c
		}
	}
	return pick
}

// step advances one core by one access.
func (m *MultiRunner) step(c *core) {
	a, ok := c.gen.Next()
	if !ok {
		c.done = true
		return
	}
	c.accesses++
	kernelBefore := m.Sys.KernelNs()
	va := m.base(c.id).Addr() + tiermem.VirtAddr(a.Offset)
	var tr tiermem.TranslateResult
	m.Sys.TranslateInto(c.id, va, a.Write, &tr)
	c.clockNs += tr.ExtraNs

	res := c.cache.Access(tr.Phys, a.Write)
	switch res.Level {
	case cache.HitL1:
		c.clockNs += m.costs.L1HitNs
	case cache.HitL2:
		c.clockNs += m.costs.L2HitNs
	case cache.HitLLC:
		c.clockNs += m.costs.LLCHitNs
	case cache.HitMemory:
		node := m.Sys.CountDRAMAccess(tr.Phys, false)
		m.dramReads[node]++
		c.clockNs += m.channels[node].serve(c.clockNs)
		if node == tiermem.NodeCXL {
			c.clockNs += m.costs.CXLReadNs
			m.Ctrl.Device.Access(trace.Access{Time: c.clockNs, Addr: tr.Phys, Write: a.Write}) //m5:unitcredit exact engine: one access, weight 1
		} else {
			c.clockNs += m.costs.DDRReadNs
		}
	}
	for _, wb := range res.Writeback {
		node := m.Sys.CountDRAMAccess(wb, true)
		m.dramWrites[node]++
		c.clockNs += m.costs.DRAMWriteNs
		m.channels[node].serve(c.clockNs)
		if node == tiermem.NodeCXL {
			m.Ctrl.Device.Access(trace.Access{Time: c.clockNs, Addr: wb, Write: true}) //m5:unitcredit exact engine: one access, weight 1
		}
	}

	if a.OpEnd {
		c.opLat.Add(float64(c.clockNs - c.opStart))
		c.opStart = c.clockNs
	}

	// The daemon shares core 0.
	if m.daemon != nil && c.id == 0 && c.clockNs >= m.nextTick {
		m.daemon.Tick(c.clockNs)
		m.nextTick = c.clockNs + m.daemon.PeriodNs()
	}
	c.clockNs += m.Sys.KernelNs() - kernelBefore
}

// Run executes n accesses per core (causally interleaved) and returns the
// aggregate result.
func (m *MultiRunner) Run(nPerCore int) MultiResult {
	var startClock []uint64
	for _, c := range m.cores {
		startClock = append(startClock, c.clockNs)
		c.opLat.Reset()
	}
	startKernel := m.Sys.KernelNs()
	target := make([]uint64, len(m.cores))
	for i, c := range m.cores {
		target[i] = c.accesses + uint64(nPerCore)
	}
	for {
		c := m.next()
		if c == nil {
			break
		}
		if c.accesses >= target[c.id] {
			c.done = true
			continue
		}
		m.step(c)
	}
	for _, c := range m.cores {
		c.done = false
	}

	res := MultiResult{Cores: len(m.cores)}
	for i, c := range m.cores {
		el := c.clockNs - startClock[i]
		if el > res.ElapsedNs {
			res.ElapsedNs = el
		}
		res.Accesses += c.accesses
		if c.opLat.Len() > 0 {
			res.OpCount += uint64(c.opLat.Len())
			if p := c.opLat.Percentile(99); p > res.P99OpNs {
				res.P99OpNs = p
			}
		}
	}
	res.KernelNs = m.Sys.KernelNs() - startKernel
	res.DRAMReads = m.dramReads
	res.DRAMWrites = m.dramWrites
	res.Promotions = m.Sys.Promotions()
	res.Demotions = m.Sys.Demotions()
	res.Obs = m.metrics.Snapshot()
	return res
}

// Close releases every instance's generator.
func (m *MultiRunner) Close() {
	for _, c := range m.cores {
		c.gen.Close()
	}
}

// MultiResult aggregates a multi-core span.
type MultiResult struct {
	Cores int
	// Accesses is the total across cores; ElapsedNs is the slowest core's
	// span (SPECrate reports the slowest copy).
	Accesses  uint64
	ElapsedNs uint64
	KernelNs  uint64
	// P99OpNs is the worst per-core p99 (KVS instances only).
	OpCount uint64
	P99OpNs float64
	// Node-indexed traffic and migration totals.
	DRAMReads  [2]uint64
	DRAMWrites [2]uint64
	Promotions uint64
	Demotions  uint64
	// Obs is the observability snapshot at span end (nil unless
	// MultiConfig.Metrics was set).
	Obs *obs.Snapshot
}

// CXLReadShare returns the fraction of DRAM reads served by CXL.
func (r MultiResult) CXLReadShare() float64 {
	tot := r.DRAMReads[tiermem.NodeDDR] + r.DRAMReads[tiermem.NodeCXL]
	if tot == 0 {
		return 0
	}
	return float64(r.DRAMReads[tiermem.NodeCXL]) / float64(tot) //m5:floatok report-side share derivation from integer counters
}
