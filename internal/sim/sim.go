// Package sim is the end-to-end engine of the reproduction: it drives a
// workload's virtual-address stream through the TLB/page-table model, the
// cache hierarchy, and the tiered DRAM (DDR + CXL device), while a
// migration daemon (ANB, DAMON, PEBS, or the M5-manager) runs periodically
// on the same core — so the cost of identifying hot pages degrades the
// workload exactly as §4.2 measures, and the benefit of migrating true hot
// pages shows up as saved CXL latency exactly as §7.2 measures.
//
// Time is a deterministic nanosecond clock: each access pays its cache or
// DRAM latency plus any translation cost; each daemon tick adds the kernel
// time it consumed (the paper pins the migration processes to the
// benchmark's core, §6).
package sim

import (
	"fmt"

	"m5/internal/cache"
	"m5/internal/cxl"
	"m5/internal/dram"
	"m5/internal/mem"
	"m5/internal/obs"
	"m5/internal/stats"
	"m5/internal/tiermem"
	"m5/internal/trace"
	"m5/internal/tracker"
	"m5/internal/workload"
)

// WordRemap intercepts DRAM accesses below the page table, deciding which
// tier actually serves a word and at what extra cost. It models
// memory-controller-level mechanisms like Intel Flat Memory Mode
// (package ifmm), which the paper discusses as complementary to M5 (§9).
type WordRemap interface {
	// Serve returns the tier serving this word access and any extra
	// latency (e.g. a swap), given the word's home tier.
	Serve(w mem.WordNum, home tiermem.NodeID) (tiermem.NodeID, uint64)
}

// Daemon is a page-migration solution scheduled by the engine: the unified
// tiermem.Policy contract (Name / PeriodNs / Tick / Stats). The baselines
// and the M5 manager all satisfy it.
type Daemon = tiermem.Policy

// tickKernelBounds buckets the kernel time one daemon tick consumed
// (metric policy.tick_kernel_ns): 1µs / 10µs / 100µs / 1ms / 10ms edges
// span the §4.2 identification-overhead range.
var tickKernelBounds = []uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// Config assembles one experiment.
type Config struct {
	// Workload supplies the access stream. The runner allocates its
	// arena entirely on CXL at start, as the paper's cgroup setup does
	// (§4.1 S2, §7.2).
	Workload workload.Generator
	// DDRFraction sizes the DDR cgroup limit as a fraction of the
	// workload footprint (the paper's 3GB over ~6-8GB ≈ 0.5). Default 0.5.
	DDRFraction float64
	// Cache configures the hierarchy; zero-value uses platform defaults.
	// For scaled-down experiments pick a NewScaledCache.
	Cache cache.HierarchyConfig
	// Costs is the latency/cost model (default DefaultCosts).
	Costs tiermem.CostModel
	// HPT / HWT enable trackers on the CXL controller.
	HPT *tracker.Config
	HWT *tracker.Config
	// EnablePAC / EnableWAC attach the exact profilers (needed by the
	// access-count-ratio and sparsity experiments).
	EnablePAC bool
	EnableWAC bool
	// HugePages maps the workload arena as 2MB huge pages (the §8
	// extension): the footprint rounds up to a 512-page multiple and
	// migrations move whole units. Requires a footprint of at least one
	// huge page.
	HugePages bool
	// RowBuffer enables the DRAM row-buffer timing model (package dram):
	// the fixed per-tier read latencies split into a link/controller part
	// plus a row-hit/miss/conflict device part, so streaming traffic sees
	// lower effective DRAM latency than scattered traffic — the Ramulator
	// fidelity level of the paper's trace methodology.
	RowBuffer bool
	// TLBEntries sizes the core TLB. The default scales with the
	// footprint, preserving the paper's TLB-coverage ratio (1536 entries
	// over ~2M pages): a scaled-down instance gets a scaled-down TLB, so
	// accessed bits keep flowing from TLB-miss page walks — the signal
	// DAMON and MGLRU live on.
	TLBEntries int
	// CtxSwitchPeriodNs flushes the TLB periodically (context switches /
	// timer ticks), the "architectural events" §2.1 cites as the passive
	// invalidation path. Default 1ms of simulated time (a 1kHz tick).
	CtxSwitchPeriodNs uint64
	// Metrics, when non-nil, is the experiment's observability registry:
	// the runner fans scoped children out to every layer ("cache",
	// "dram.ddr", "dram.cxl", "cxl", "mem") and observes daemon-tick
	// kernel time under "policy". Nil keeps every instrumented hot path at
	// a single nil check (zero allocations, no counter work).
	Metrics *obs.Registry
	// BatchSize is how many accesses the batched loop pulls from the
	// generator per refill (default 1024). Batch size never changes
	// results — it only amortizes generator dispatch — so it is exposed
	// for sensitivity testing and benching.
	BatchSize int
	// FastForward opts into the epoch fast-forward engine: between event
	// horizons (daemon ticks, context-switch TLB flushes) whole tape
	// segments execute through vectorized translate/classify/commit
	// kernels instead of the scalar per-access loop. Byte-identical to
	// exact mode on every metric and obs counter (the equivalence tests
	// pin this); the engine silently stays on the exact path whenever a
	// configuration it cannot bound is present (a word remapper, or a
	// miss sink without a kernel-cost bound).
	FastForward bool
	// Sampling selects the fidelity tier (see sampling.go): the
	// zero value and "exact" keep the byte-identical engine; "sampled"
	// alternates functional warming with detailed measurement windows
	// and reports headline time as an estimate with a Student-t
	// confidence interval. Composable with FastForward (detailed windows
	// then run through the fast-forward engine).
	Sampling SamplingConfig
}

// Runner is one assembled experiment instance.
type Runner struct {
	Sys   *tiermem.System
	Ctrl  *cxl.Controller
	Cache *cache.Hierarchy

	cfg      Config // retained (with defaults applied) so checkpoints can rebuild the machine
	gen      workload.Generator
	base     tiermem.VPN
	daemon   Daemon
	remap    WordRemap
	channels [2]*dram.Channel // nil unless RowBuffer is enabled
	linkNs   [2]uint64        // link/controller latency above the device
	sinks    trace.Tee        // observers of the full DRAM-access stream
	clockNs  uint64
	nextTick uint64
	opStart  uint64
	opLat    *stats.Reservoir
	costs    tiermem.CostModel
	// latHit flattens the per-access hit-level switch: indexed by
	// cache.HitL1..HitLLC (HitMemory takes the DRAM path instead).
	latHit [4]uint64
	// batch is the reusable access buffer the batched loop pulls the
	// generator stream into (also the transpose scratch of the
	// fast-forward refill path).
	batch     []workload.Access
	batchSize int

	// Fast-forward state: ff is the opt-in flag; maxServeNs bounds the
	// clock advance of one access's serve phase (translate extra and
	// kernel time are tracked exactly); sinkBoundNs sums the per-Observe
	// kernel bounds of attached sinks, and sinkUnbounded pins the engine
	// to the exact path when a sink cannot bound its charge.
	ff            bool
	maxServeNs    uint64
	sinkBoundNs   uint64
	sinkUnbounded bool
	ffs           *ffState

	// Sampled-mode state (sampling.go): sampled caches
	// cfg.Sampling.Enabled(); smp is the per-Run scheduler scratch.
	// estPrior persists the measured mean user-side ns/access across Runs
	// (and through Checkpoint/Fork), so spans too short to schedule their
	// own windows can still run thinned against a primed estimate.
	sampled  bool
	smp      sampleState
	estPrior float64

	ctxNs   uint64
	nextCtx uint64

	metrics        *obs.Registry
	obsTickKernel  *obs.Histogram
	obsKernelNs    *obs.Gauge
	obsResidentDDR *obs.Gauge
	// sample.* metrics are registered only for sampled runners, so
	// exact-mode snapshots stay byte-identical (an absent metric never
	// appears in a snapshot).
	obsSampleWindows    *obs.Counter
	obsSampleDetailed   *obs.Counter
	obsSampleFunctional *obs.Counter
	obsSampleSkipped    *obs.Counter
	obsSampleCIHalf     *obs.Gauge

	accesses   uint64
	dramReads  [2]uint64
	dramWrites [2]uint64
}

// NewScaledCache returns a hierarchy config scaled for the MB-range
// footprints of the reproduction's workload instances: the cache must be
// small relative to the footprint or no DRAM traffic survives filtering
// (the paper's LLC-to-footprint ratio is ~16MB : 6-8GB).
func NewScaledCache(footprintBytes uint64) cache.HierarchyConfig {
	// Target an LLC of ~1/256 of the footprint, rounded down to a power
	// of two (so sets divide evenly), clamped to [64KB, 8MB].
	llc := uint64(64 << 10)
	for llc*2 <= footprintBytes/256 && llc < 8<<20 {
		llc *= 2
	}
	way := llc / 8
	return cache.HierarchyConfig{
		L1:          cache.Config{SizeBytes: 8 << 10, Ways: 2},
		L2:          cache.Config{SizeBytes: int(llc / 8), Ways: 4},
		LLCWayBytes: int(way),
		LLCWays:     8,
	}
}

// NewRunner builds the machine for a workload: it sizes the tiers from the
// footprint, allocates every page on CXL, and wires the controller's snoop
// path.
//
//m5:plumb Config
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("sim: config needs a workload")
	}
	if cfg.DDRFraction == 0 {
		cfg.DDRFraction = 0.5
	}
	if cfg.Costs == (tiermem.CostModel{}) {
		cfg.Costs = tiermem.DefaultCosts()
	}
	footPages := (cfg.Workload.Footprint() + 4095) / 4096
	if footPages == 0 {
		return nil, fmt.Errorf("sim: workload %q has empty footprint", cfg.Workload.Name())
	}
	nHuge := 0
	if cfg.HugePages {
		nHuge = int((footPages + mem.PagesPerHugePage - 1) / mem.PagesPerHugePage)
		if nHuge == 0 {
			return nil, fmt.Errorf("sim: footprint below one huge page")
		}
		footPages = uint64(nHuge) * mem.PagesPerHugePage
	}
	if cfg.TLBEntries == 0 {
		cfg.TLBEntries = scaledTLBEntries(footPages)
	}
	if cfg.CtxSwitchPeriodNs == 0 {
		cfg.CtxSwitchPeriodNs = 1_000_000
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = runnerBatch
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("sim: batch size %d must be positive", cfg.BatchSize)
	}
	if err := cfg.Sampling.validate(); err != nil {
		return nil, err
	}
	cfg.Sampling = cfg.Sampling.withDefaults()
	ddrLimit := uint64(float64(footPages) * cfg.DDRFraction) //m5:floatok setup-time DDR capacity sizing
	if ddrLimit == 0 {
		ddrLimit = 1
	}
	sys := tiermem.NewSystem(tiermem.Config{
		// Physical DDR is provisioned at the limit+slack; the cgroup
		// limit is what constrains the workload.
		DDRPages:      ddrLimit + mem.PagesPerHugePage,
		CXLPages:      footPages + 64,
		DDRLimitPages: ddrLimit,
		Cores:         1,
		TLBEntries:    cfg.TLBEntries,
		Costs:         cfg.Costs,
		Metrics:       cfg.Metrics.Scope("mem"),
	})
	var base tiermem.VPN
	var err error
	if cfg.HugePages {
		base, err = sys.AllocHuge(nHuge, tiermem.NodeCXL)
	} else {
		base, err = sys.Alloc(int(footPages), tiermem.NodeCXL)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: allocating arena: %w", err)
	}
	ctrl := cxl.NewController(cxl.ControllerConfig{
		Span:      sys.CXLSpan(),
		EnablePAC: cfg.EnablePAC,
		EnableWAC: cfg.EnableWAC,
		HPT:       cfg.HPT,
		HWT:       cfg.HWT,
		Metrics:   cfg.Metrics.Scope("cxl"),
	})
	cacheCfg := cfg.Cache
	if cacheCfg == (cache.HierarchyConfig{}) {
		cacheCfg = NewScaledCache(cfg.Workload.Footprint())
	}
	// Set after the zero-value check above, or a caller passing only a
	// registry would dodge the scaled-cache default.
	cacheCfg.Metrics = cfg.Metrics.Scope("cache")
	r := &Runner{
		Sys:     sys,
		Ctrl:    ctrl,
		Cache:   cache.NewHierarchy(cacheCfg),
		gen:     cfg.Workload,
		base:    base,
		opLat:   stats.NewReservoir(1<<15, 17),
		costs:   cfg.Costs,
		ctxNs:   cfg.CtxSwitchPeriodNs,
		nextCtx: cfg.CtxSwitchPeriodNs,
	}
	r.metrics = cfg.Metrics
	policyScope := cfg.Metrics.Scope("policy")
	r.obsTickKernel = policyScope.Histogram("tick_kernel_ns", tickKernelBounds)
	memScope := cfg.Metrics.Scope("mem")
	r.obsKernelNs = memScope.Gauge("kernel_ns")
	r.obsResidentDDR = memScope.Gauge("resident_ddr_pages")
	if cfg.RowBuffer {
		ddr, cxlDev := dram.DDR5Host(), dram.DDR4Device()
		ddr.Metrics = cfg.Metrics.Scope("dram.ddr")
		cxlDev.Metrics = cfg.Metrics.Scope("dram.cxl")
		r.channels[tiermem.NodeDDR] = dram.New(ddr)
		r.channels[tiermem.NodeCXL] = dram.New(cxlDev)
		// The fixed tier latency decomposes into link/controller time
		// plus the device's row-miss case, keeping averages comparable
		// with the flat model.
		r.linkNs[tiermem.NodeDDR] = cfg.Costs.DDRReadNs - ddr.Timing.RowMissNs
		r.linkNs[tiermem.NodeCXL] = cfg.Costs.CXLReadNs - cxlDev.Timing.RowMissNs
	}
	r.latHit[cache.HitL1] = cfg.Costs.L1HitNs
	r.latHit[cache.HitL2] = cfg.Costs.L2HitNs
	r.latHit[cache.HitLLC] = cfg.Costs.LLCHitNs
	r.batchSize = cfg.BatchSize
	r.ff = cfg.FastForward
	r.maxServeNs = r.maxServeBound()
	r.sampled = cfg.Sampling.Enabled()
	if r.sampled {
		sampleScope := cfg.Metrics.Scope("sample")
		r.obsSampleWindows = sampleScope.Counter("windows_measured")
		r.obsSampleDetailed = sampleScope.Counter("accesses_detailed")
		r.obsSampleFunctional = sampleScope.Counter("accesses_functional")
		r.obsSampleSkipped = sampleScope.Counter("accesses_skipped")
		r.obsSampleCIHalf = sampleScope.Gauge("ci_halfwidth_ppm")
	}
	r.cfg = cfg
	return r, nil
}

// maxServeBound returns an upper bound on the clock advance of one
// access's serve phase — hit latency or DRAM read (worst row-buffer
// outcome included) plus up to three writebacks. Translate extra time,
// kernel time, and sink-observe charges are bounded separately by the
// fast-forward scheduler.
func (r *Runner) maxServeBound() uint64 {
	read := r.costs.DDRReadNs
	if r.costs.CXLReadNs > read {
		read = r.costs.CXLReadNs
	}
	for node := 0; node < 2; node++ {
		if ch := r.channels[node]; ch != nil {
			if b := r.linkNs[node] + ch.MaxAccessNs(); b > read {
				read = b
			}
		}
	}
	serve := read
	for _, lat := range r.latHit {
		if lat > serve {
			serve = lat
		}
	}
	return serve + 3*r.costs.DRAMWriteNs
}

// DRAMChannel returns the node's row-buffer channel (nil when the flat
// latency model is in use).
func (r *Runner) DRAMChannel(node tiermem.NodeID) *dram.Channel {
	return r.channels[node]
}

// dramReadLatency returns the read latency for a DRAM access at the node.
//m5:hotpath
func (r *Runner) dramReadLatency(node tiermem.NodeID, a mem.PhysAddr) uint64 {
	if ch := r.channels[node]; ch != nil {
		_, lat := ch.Access(a)
		return r.linkNs[node] + lat
	}
	if node == tiermem.NodeCXL {
		return r.costs.CXLReadNs
	}
	return r.costs.DDRReadNs
}

// scaledTLBEntries keeps TLB coverage proportional to the paper's
// platform: 1536 entries for a multi-GB footprint, scaled down (but at
// least 16 entries) for the reduced instances.
func scaledTLBEntries(footPages uint64) int {
	n := footPages / 64
	if n < 16 {
		n = 16
	}
	if n > 1536 {
		n = 1536
	}
	return int(n)
}

// Base returns the first VPN of the workload arena.
func (r *Runner) Base() tiermem.VPN { return r.base }

// SetDaemon installs the migration daemon (nil = no page migration).
func (r *Runner) SetDaemon(d Daemon) {
	r.daemon = d
	if d != nil {
		r.nextTick = r.clockNs + d.PeriodNs()
	}
}

// AttachMissSink adds an observer of the DRAM access stream (the LLC-miss
// stream): PEBS samplers, trace recorders, and the like. CXL-side
// functions (PAC/WAC/HPT/HWT) are attached to the controller instead and
// see only device traffic, as in hardware.
func (r *Runner) AttachMissSink(s trace.Sink) {
	r.sinks = append(r.sinks, s)
	if b, ok := s.(trace.KernelCostBounded); ok {
		r.sinkBoundNs += b.MaxObserveKernelNs()
	} else {
		r.sinkUnbounded = true
	}
}

// SetWordRemap installs a memory-controller-level word remapper (nil
// disables). The remapper decides, per LLC miss, which tier serves the
// word — the IFMM swap path.
func (r *Runner) SetWordRemap(m WordRemap) { r.remap = m }

// NowNs returns the simulated clock.
func (r *Runner) NowNs() uint64 { return r.clockNs }

// Step executes exactly one workload access and returns false when the
// workload stream has ended.
func (r *Runner) Step() bool {
	a, ok := r.gen.Next()
	if !ok {
		return false
	}
	r.accesses++
	kernelBefore := r.Sys.KernelNs()
	va := r.base.Addr() + tiermem.VirtAddr(a.Offset)
	tr := r.Sys.Translate(0, va, a.Write)
	r.clockNs += tr.ExtraNs

	res := r.Cache.Access(tr.Phys, a.Write)
	switch res.Level {
	case cache.HitL1:
		r.clockNs += r.costs.L1HitNs
	case cache.HitL2:
		r.clockNs += r.costs.L2HitNs
	case cache.HitLLC:
		r.clockNs += r.costs.LLCHitNs
	case cache.HitMemory:
		node := r.Sys.NodeOfAddr(tr.Phys)
		if r.remap != nil {
			served, extra := r.remap.Serve(tr.Phys.Word(), node)
			r.clockNs += extra
			node = served
		}
		if node == tiermem.NodeDDR {
			r.Sys.Node(tiermem.NodeDDR).CountRead() //m5:unitcredit exact engine: one access, weight 1
		} else {
			r.Sys.Node(tiermem.NodeCXL).CountRead() //m5:unitcredit exact engine: one access, weight 1
		}
		r.dramReads[node]++
		r.clockNs += r.dramReadLatency(node, tr.Phys)
		if node == tiermem.NodeCXL {
			r.Ctrl.Device.Access(trace.Access{Time: r.clockNs, Addr: tr.Phys, Write: a.Write}) //m5:unitcredit exact engine: one access, weight 1
		}
		r.sinks.Observe(trace.Access{Time: r.clockNs, Addr: tr.Phys, Write: a.Write}) //m5:unitcredit exact engine: one access, weight 1
	}
	for _, wb := range res.Writeback {
		node := r.Sys.CountDRAMAccess(wb, true)
		r.dramWrites[node]++
		r.clockNs += r.costs.DRAMWriteNs
		if node == tiermem.NodeCXL {
			r.Ctrl.Device.Access(trace.Access{Time: r.clockNs, Addr: wb, Write: true}) //m5:unitcredit exact engine: one access, weight 1
		}
		r.sinks.Observe(trace.Access{Time: r.clockNs, Addr: wb, Write: true}) //m5:unitcredit exact engine: one access, weight 1
	}
	// Prefetch fills consume DRAM bandwidth and are visible to the CXL
	// controller's counters — the hardware cannot tell demand from
	// prefetch — but add no demand latency to the core.
	for _, pf := range res.Prefetched {
		node := r.Sys.CountDRAMAccess(pf, false)
		r.dramReads[node]++
		if node == tiermem.NodeCXL {
			r.Ctrl.Device.Access(trace.Access{Time: r.clockNs, Addr: pf}) //m5:unitcredit exact engine: one access, weight 1
		}
		r.sinks.Observe(trace.Access{Time: r.clockNs, Addr: pf}) //m5:unitcredit exact engine: one access, weight 1
	}

	if a.OpEnd {
		r.opLat.Add(float64(r.clockNs - r.opStart))
		r.opStart = r.clockNs
	}

	// Periodic context switch: flush the TLB so accessed bits keep being
	// set by fresh page walks (the passive invalidation path of §2.1).
	if r.ctxNs > 0 && r.clockNs >= r.nextCtx {
		r.Sys.TLB(0).Flush()
		r.nextCtx = r.clockNs + r.ctxNs
	}

	// The migration daemon shares the core.
	if r.daemon != nil && r.clockNs >= r.nextTick {
		tickKernelBefore := r.Sys.KernelNs()
		r.daemon.Tick(r.clockNs)
		r.nextTick = r.clockNs + r.daemon.PeriodNs()
		r.obsTickKernel.Observe(r.Sys.KernelNs() - tickKernelBefore)
	}

	// All kernel mm work this access triggered — fault handling (with any
	// inline ANB promotion), PTE scans, shootdowns, migrate_pages(), and
	// the daemon tick itself — stalls this core for exactly the kernel
	// time it consumed (the paper pins kernel threads to the workload
	// core, §6).
	r.clockNs += r.Sys.KernelNs() - kernelBefore
	return true
}

// runnerBatch is the default number of accesses the batched loop pulls
// from the generator per refill (Config.BatchSize overrides).
const runnerBatch = 1024

// StepBatch executes up to max accesses (bounded by one internal batch)
// and returns how many ran; 0 means the workload stream has ended. It is
// access-for-access equivalent to calling Step in a loop — the batching
// only amortizes generator dispatch and hoists loop-invariant branches.
// With fast-forward enabled (and boundable: no word remapper, every sink
// kernel-cost bounded) the batch runs through the segment scheduler
// instead; the result is byte-identical either way.
func (r *Runner) StepBatch(max int) int {
	if max <= 0 {
		return 0
	}
	if r.batch == nil {
		r.batch = make([]workload.Access, r.batchSize)
	}
	if r.ff && r.remap == nil && !r.sinkUnbounded {
		return r.stepBatchFF(max)
	}
	buf := r.batch
	if max < len(buf) {
		buf = buf[:max]
	}
	n := workload.NextBatch(r.gen, buf)
	if n == 0 {
		return 0
	}
	r.runBatch(buf[:n])
	return n
}

// runBatch is the batched hot loop. Loop-invariant state (sink presence,
// remapper, daemon, context-switch period, arena base) is hoisted into
// locals; the hit-level switch is a table lookup; and one trace.Access
// scratch value feeds both the CXL snoop path and the miss-sink fan-out.
// The body mirrors Step exactly — determinism tests pin the equivalence.
//m5:hotpath
func (r *Runner) runBatch(accs []workload.Access) {
	var (
		base     = r.base.Addr()
		hasSinks = len(r.sinks) > 0
		remap    = r.remap
		daemon   = r.daemon
		ctxOn    = r.ctxNs > 0
		scratch  trace.Access
		tr       tiermem.TranslateResult
	)
	for i := range accs {
		a := &accs[i]
		r.accesses++
		kernelBefore := r.Sys.KernelNs()
		va := base + tiermem.VirtAddr(a.Offset)
		r.Sys.TranslateInto(0, va, a.Write, &tr)
		r.clockNs += tr.ExtraNs

		res := r.Cache.Access(tr.Phys, a.Write)
		if res.Level != cache.HitMemory {
			r.clockNs += r.latHit[res.Level]
		} else {
			node := r.Sys.NodeOfAddr(tr.Phys)
			if remap != nil {
				served, extra := remap.Serve(tr.Phys.Word(), node)
				r.clockNs += extra
				node = served
			}
			r.Sys.Node(node).CountRead() //m5:unitcredit exact engine: one access, weight 1
			r.dramReads[node]++
			r.clockNs += r.dramReadLatency(node, tr.Phys)
			if node == tiermem.NodeCXL || hasSinks {
				scratch = trace.Access{Time: r.clockNs, Addr: tr.Phys, Write: a.Write}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.Access(scratch) //m5:unitcredit exact engine: one access, weight 1
				}
				if hasSinks {
					r.sinks.Observe(scratch) //m5:unitcredit exact engine: one access, weight 1
				}
			}
		}
		for _, wb := range res.Writeback {
			node := r.Sys.CountDRAMAccess(wb, true)
			r.dramWrites[node]++
			r.clockNs += r.costs.DRAMWriteNs
			if node == tiermem.NodeCXL || hasSinks {
				scratch = trace.Access{Time: r.clockNs, Addr: wb, Write: true}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.Access(scratch) //m5:unitcredit exact engine: one access, weight 1
				}
				if hasSinks {
					r.sinks.Observe(scratch) //m5:unitcredit exact engine: one access, weight 1
				}
			}
		}
		for _, pf := range res.Prefetched {
			node := r.Sys.CountDRAMAccess(pf, false)
			r.dramReads[node]++
			if node == tiermem.NodeCXL || hasSinks {
				scratch = trace.Access{Time: r.clockNs, Addr: pf}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.Access(scratch) //m5:unitcredit exact engine: one access, weight 1
				}
				if hasSinks {
					r.sinks.Observe(scratch) //m5:unitcredit exact engine: one access, weight 1
				}
			}
		}

		if a.OpEnd {
			r.opLat.Add(float64(r.clockNs - r.opStart))
			r.opStart = r.clockNs
		}

		if ctxOn && r.clockNs >= r.nextCtx {
			r.Sys.TLB(0).Flush()
			r.nextCtx = r.clockNs + r.ctxNs
		}

		if daemon != nil && r.clockNs >= r.nextTick {
			tickKernelBefore := r.Sys.KernelNs()
			daemon.Tick(r.clockNs)
			r.nextTick = r.clockNs + daemon.PeriodNs()
			r.obsTickKernel.Observe(r.Sys.KernelNs() - tickKernelBefore)
		}

		r.clockNs += r.Sys.KernelNs() - kernelBefore
	}
}

// Run executes n accesses (or until the stream ends) and returns metrics
// for that span. Internally it drives the batched loop; the result is
// access-for-access identical to a Step loop. With Config.Sampling set to
// "sampled" the span runs through the tiered-fidelity scheduler instead
// (sampling.go) and the headline time is a windowed estimate.
func (r *Runner) Run(n int) Result {
	if r.sampled {
		return r.runSampled(n)
	}
	span := r.beginSpan()
	r.runExactSpan(n)
	return r.endSpan(span)
}

// spanStart is the counter baseline captured at the start of one Run span.
type spanStart struct {
	clockNs  uint64
	kernelNs uint64
	accesses uint64
	reads    [2]uint64
	writes   [2]uint64
}

func (r *Runner) beginSpan() spanStart {
	r.opLat.Reset()
	return spanStart{
		clockNs:  r.clockNs,
		kernelNs: r.Sys.KernelNs(),
		accesses: r.accesses,
		reads:    r.dramReads,
		writes:   r.dramWrites,
	}
}

// endSpan assembles the span's Result from the counter deltas.
func (r *Runner) endSpan(span spanStart) Result {
	res := Result{
		Workload:   r.gen.Name(),
		Accesses:   r.accesses - span.accesses,
		ElapsedNs:  r.clockNs - span.clockNs,
		KernelNs:   r.Sys.KernelNs() - span.kernelNs,
		Promotions: r.Sys.Promotions(),
		Demotions:  r.Sys.Demotions(),
	}
	if r.daemon != nil {
		res.Daemon = r.daemon.Name()
	} else {
		res.Daemon = "none"
	}
	for node := 0; node < 2; node++ {
		res.DRAMReads[node] = r.dramReads[node] - span.reads[node]
		res.DRAMWrites[node] = r.dramWrites[node] - span.writes[node]
	}
	if r.opLat.Len() > 0 {
		res.OpCount = uint64(r.opLat.Len())
		res.P50OpNs = r.opLat.Percentile(50)
		res.P99OpNs = r.opLat.Percentile(99)
	}
	if res.ElapsedNs > 0 {
		res.AccessesPerSec = float64(res.Accesses) * 1e9 / float64(res.ElapsedNs) //m5:floatok report-side throughput derivation from integer counters
	}
	if r.metrics != nil {
		// Gauges are point-in-time state, set once per span end so the
		// access loop stays untouched.
		r.obsKernelNs.Set(r.Sys.KernelNs())
		r.obsResidentDDR.Set(r.Sys.ResidentPages(tiermem.NodeDDR))
		res.Obs = r.metrics.Snapshot()
	}
	return res
}

// Close releases the workload generator.
func (r *Runner) Close() { r.gen.Close() }

// Result summarizes one measured span.
type Result struct {
	Workload string
	Daemon   string
	// Accesses is the number of workload memory operations executed.
	Accesses uint64
	// ElapsedNs is simulated wall time — the end-to-end performance
	// metric (inverse of throughput).
	ElapsedNs uint64
	// KernelNs is CPU time consumed by kernel mm work in the span — the
	// §4.2 identification-overhead metric.
	KernelNs uint64
	// DRAMReads/DRAMWrites per node (index by tiermem.NodeID).
	DRAMReads  [2]uint64
	DRAMWrites [2]uint64
	// Promotions/Demotions are cumulative system totals at span end.
	Promotions uint64
	Demotions  uint64
	// OpCount and latency percentiles are present for KVS workloads.
	OpCount uint64
	P50OpNs float64
	P99OpNs float64
	// AccessesPerSec is the throughput.
	AccessesPerSec float64
	// Obs is the observability snapshot at span end (nil unless
	// Config.Metrics was set). Counter values are cumulative since the
	// runner was built, not since the span start.
	Obs *obs.Snapshot
	// Sampling is non-nil only for sampled-mode spans: the fidelity-tier
	// tag plus the estimate, its confidence interval, and the window
	// counts behind it. Exact spans carry nil, so a consumer can always
	// tell which tier produced a Result.
	Sampling *SamplingInfo
}

// Speedup returns how much faster this result ran than the baseline
// (ratio of baseline elapsed time to this elapsed time).
func (r Result) Speedup(baseline Result) float64 {
	if r.ElapsedNs == 0 {
		return 0
	}
	return float64(baseline.ElapsedNs) / float64(r.ElapsedNs) //m5:floatok report-side speedup ratio from integer clocks
}

// CXLReadShare returns the fraction of DRAM reads served by CXL — the
// quantity migration is trying to shrink.
func (r Result) CXLReadShare() float64 {
	tot := r.DRAMReads[tiermem.NodeDDR] + r.DRAMReads[tiermem.NodeCXL]
	if tot == 0 {
		return 0
	}
	return float64(r.DRAMReads[tiermem.NodeCXL]) / float64(tot) //m5:floatok report-side share derivation from integer counters
}
