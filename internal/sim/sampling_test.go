package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	m5mgr "m5/internal/m5"
	"m5/internal/obs"
	"m5/internal/tracker"
	"m5/internal/workload"
)

// buildSampled assembles a runner over a tiny workload with the given
// sampling config, optionally armed with the M5 HPT manager so migration
// dynamics are part of what sampling must preserve.
func buildSampled(t *testing.T, bench string, seed int64, smp SamplingConfig, daemon bool, metrics *obs.Registry) *Runner {
	t.Helper()
	gen, err := workload.New(bench, workload.ScaleTiny, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workload: gen, Sampling: smp, Metrics: metrics}
	if daemon {
		cfg.HPT = &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5}
	}
	r, err := NewRunner(cfg)
	if err != nil {
		gen.Close()
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	if daemon {
		r.SetDaemon(m5mgr.NewManager(r.Sys, r.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
	}
	return r
}

func TestSamplingConfigValidation(t *testing.T) {
	gen, err := workload.New("roms", workload.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	for _, bad := range []SamplingConfig{
		{Mode: "fast"},
		{Mode: SampleModeSampled, DetailedWindow: -1},
		{Mode: SampleModeSampled, FunctionalStride: -5},
		{Mode: SampleModeSampled, TargetCI: -0.1},
		{Mode: SampleModeSampled, TargetCI: 1},
	} {
		if _, err := NewRunner(Config{Workload: gen, Sampling: bad}); err == nil {
			t.Errorf("NewRunner accepted invalid sampling config %+v", bad)
		}
	}
	r, err := NewRunner(Config{Workload: gen, Sampling: SamplingConfig{Mode: SampleModeSampled}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.cfg.Sampling; got.DetailedWindow != defaultDetailedWindow || got.FunctionalStride != defaultFunctionalStride {
		t.Errorf("defaults not applied: %+v", got)
	}
	// Exact modes must not mark the runner sampled.
	for _, mode := range []string{"", SampleModeExact} {
		r, err := NewRunner(Config{Workload: gen, Sampling: SamplingConfig{Mode: mode}})
		if err != nil {
			t.Fatal(err)
		}
		if r.sampled {
			t.Errorf("mode %q marked runner sampled", mode)
		}
	}
}

// TestSampledDeterminism pins that a sampled run is a pure function of
// config and seed: two identically-configured machines produce identical
// Results (estimate, interval, window counts, obs snapshot included).
func TestSampledDeterminism(t *testing.T) {
	smp := SamplingConfig{Mode: SampleModeSampled, DetailedWindow: 1024, FunctionalStride: 7168, Seed: 42}
	a := buildSampled(t, "pr", 3, smp, true, obs.New())
	b := buildSampled(t, "pr", 3, smp, true, obs.New())
	ra, rb := a.Run(150_000), b.Run(150_000)
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("sampled runs diverged:\n a %+v\n b %+v", ra, rb)
	}
	if ra.Sampling == nil || ra.Sampling.WindowsMeasured == 0 {
		t.Fatalf("sampled run measured no windows: %+v", ra.Sampling)
	}
}

// TestSampledEstimateTracksExact checks the statistical contract on one
// representative machine: the sampled estimate lands near the exact
// elapsed time and carries a sane interval. (The cross-seed CI-coverage
// gate lives in experiments.SampleCoverage; this is the engine-level
// sanity bound.)
func TestSampledEstimateTracksExact(t *testing.T) {
	const warm, n = 100_000, 400_000
	exact := buildSampled(t, "pr", 3, SamplingConfig{}, true, nil)
	sampled := buildSampled(t, "pr", 3, SamplingConfig{Mode: SampleModeSampled, DetailedWindow: 1024, FunctionalStride: 7168}, true, nil)
	// Warm both machines past the first-touch/cold-cache transient, as
	// every harness does before measuring.
	exact.Run(warm)
	sampled.Run(warm)
	re, rs := exact.Run(n), sampled.Run(n)
	if rs.Sampling == nil || rs.Sampling.WindowsMeasured < 2 {
		t.Fatalf("expected >=2 windows, got %+v", rs.Sampling)
	}
	// Primary contract: the exact value lies inside the declared CI.
	diff := math.Abs(float64(rs.ElapsedNs) - float64(re.ElapsedNs))
	if diff > rs.Sampling.CIHalfNs {
		t.Errorf("exact %d outside sampled CI %d ± %.0f", re.ElapsedNs, rs.ElapsedNs, rs.Sampling.CIHalfNs)
	}
	relErr := diff / float64(re.ElapsedNs)
	if relErr > 0.10 {
		t.Errorf("sampled estimate off by %.1f%% (exact %d, sampled %d ± %.0f)",
			relErr*100, re.ElapsedNs, rs.ElapsedNs, rs.Sampling.CIHalfNs)
	}
	if rs.Sampling.EstimateNs != rs.ElapsedNs {
		t.Errorf("EstimateNs %d != ElapsedNs %d", rs.Sampling.EstimateNs, rs.ElapsedNs)
	}
	if rs.Sampling.CIHalfNs <= 0 || rs.Sampling.RelCIHalf <= 0 {
		t.Errorf("degenerate interval: %+v", rs.Sampling)
	}
	if rs.Sampling.Confidence != sampleConfidence {
		t.Errorf("confidence %v, want %v", rs.Sampling.Confidence, sampleConfidence)
	}
	if got := rs.Sampling.AccessesDetailed + rs.Sampling.AccessesFunctional; got != rs.Accesses {
		t.Errorf("tier split %d != span accesses %d", got, rs.Accesses)
	}
	// DRAM traffic counters stay exact counts (not estimates): the
	// functional loop counts every miss. They should be within a few
	// percent of the exact run (divergence comes only from migration
	// timing differences).
	// An absolute floor keeps the bound meaningful when the exact run has
	// (near-)zero DRAM reads — everything L1-resident — where thinning's
	// few stray fills would otherwise make the relative error blow up.
	tot := func(r Result) float64 { return float64(r.DRAMReads[0] + r.DRAMReads[1]) }
	if d := math.Abs(tot(rs) - tot(re)); d > 0.10*tot(re)+512 {
		t.Errorf("DRAM read counts diverged between tiers: sampled %.0f vs exact %.0f", tot(rs), tot(re))
	}
}

// TestSampledShortSpanFallsBackExact pins the short-span escape: a span
// below two periods runs the exact engine and reports zero windows and a
// zero interval, with ElapsedNs equal to a twin exact runner's.
func TestSampledShortSpanFallsBackExact(t *testing.T) {
	smp := SamplingConfig{Mode: SampleModeSampled, DetailedWindow: 8192, FunctionalStride: 57344}
	sampled := buildSampled(t, "roms", 9, smp, false, nil)
	exact := buildSampled(t, "roms", 9, SamplingConfig{}, false, nil)
	const n = 50_000 // < 2*(8192+57344)
	rs, re := sampled.Run(n), exact.Run(n)
	if rs.Sampling == nil || rs.Sampling.Mode != SampleModeSampled {
		t.Fatalf("short sampled span lost its fidelity tag: %+v", rs.Sampling)
	}
	if rs.Sampling.WindowsMeasured != 0 || rs.Sampling.CIHalfNs != 0 || rs.Sampling.AccessesFunctional != 0 {
		t.Errorf("short span should be fully detailed: %+v", rs.Sampling)
	}
	if rs.ElapsedNs != re.ElapsedNs || rs.KernelNs != re.KernelNs {
		t.Errorf("short sampled span diverged from exact: %d/%d vs %d/%d",
			rs.ElapsedNs, rs.KernelNs, re.ElapsedNs, re.KernelNs)
	}
}

// TestSampledTargetCIEarlyStop: with a loose error budget the scheduler
// should stop measuring after the minimum window count and run the rest
// functionally; with no budget it measures every scheduled window.
func TestSampledTargetCIEarlyStop(t *testing.T) {
	const n = 1_500_000
	geo := SamplingConfig{Mode: SampleModeSampled, DetailedWindow: 1024, FunctionalStride: 7168}
	budget := geo
	budget.TargetCI = 0.5
	all := buildSampled(t, "roms", 9, geo, false, nil)
	stop := buildSampled(t, "roms", 9, budget, false, nil)
	ra, rb := all.Run(n), stop.Run(n)
	if ra.Sampling.WindowsMeasured <= rb.Sampling.WindowsMeasured {
		t.Fatalf("early stop measured %d windows, no-budget run %d — expected fewer",
			rb.Sampling.WindowsMeasured, ra.Sampling.WindowsMeasured)
	}
	if rb.Sampling.WindowsMeasured < sampleMinWindows {
		t.Errorf("early stop below the %d-window floor: %d", sampleMinWindows, rb.Sampling.WindowsMeasured)
	}
	if rb.Sampling.RelCIHalf > 0.5 {
		t.Errorf("early stop with interval above budget: %+v", rb.Sampling)
	}
}

// TestSampleOffsetPure pins window placement as a pure function of
// (seed, position) and spread across the period.
func TestSampleOffsetPure(t *testing.T) {
	if sampleOffset(7, 123) != sampleOffset(7, 123) {
		t.Fatal("sampleOffset not deterministic")
	}
	seen := map[uint64]bool{}
	for seed := int64(0); seed < 16; seed++ {
		seen[sampleOffset(seed, 0)%65536] = true
	}
	if len(seen) < 12 {
		t.Errorf("offsets poorly spread: %d distinct of 16 seeds", len(seen))
	}
}

// TestSampledObsCounters: sampled runners expose the sample.* scope and
// its values agree with the Result's SamplingInfo; exact runners must not
// register the scope at all (snapshot byte-identity).
func TestSampledObsCounters(t *testing.T) {
	reg := obs.New()
	smp := SamplingConfig{Mode: SampleModeSampled, DetailedWindow: 1024, FunctionalStride: 7168}
	r := buildSampled(t, "pr", 3, smp, false, reg)
	res := r.Run(200_000)
	snap := res.Obs
	if snap == nil {
		t.Fatal("no obs snapshot")
	}
	want := map[string]uint64{
		"sample.windows_measured":    uint64(res.Sampling.WindowsMeasured),
		"sample.accesses_detailed":   res.Sampling.AccessesDetailed,
		"sample.accesses_functional": res.Sampling.AccessesFunctional,
		"sample.ci_halfwidth_ppm":    uint64(math.Round(res.Sampling.RelCIHalf * 1e6)),
	}
	got := map[string]uint64{}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "sample.") {
			got[name] = v
		}
	}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "sample.") {
			got[name] = v
		}
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d, want %d", name, got[name], w)
		}
	}

	exact := buildSampled(t, "pr", 3, SamplingConfig{}, false, obs.New())
	esnap := exact.Run(50_000).Obs
	for name := range esnap.Counters {
		if strings.HasPrefix(name, "sample.") {
			t.Errorf("exact-mode snapshot leaked %s", name)
		}
	}
	for name := range esnap.Gauges {
		if strings.HasPrefix(name, "sample.") {
			t.Errorf("exact-mode snapshot leaked %s", name)
		}
	}
}

// TestFunctionalStepZeroAlloc pins the functional warming loop at zero
// heap allocations once its scratch is built.
func TestFunctionalStepZeroAlloc(t *testing.T) {
	smp := SamplingConfig{Mode: SampleModeSampled, DetailedWindow: 1024, FunctionalStride: 7168}
	r := buildSampled(t, "roms", 9, smp, false, nil)
	r.smp.est = r.samplePriorNs()
	if r.runFunctionalSpan(4096) != 4096 {
		t.Fatal("warm functional span fell short")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if r.stepFunctional(r.batchSize, 1) == 0 {
			t.Fatal("stream ended mid-measurement")
		}
	})
	if allocs != 0 {
		t.Errorf("stepFunctional allocates %.1f per batch, want 0", allocs)
	}
	skipAllocs := testing.AllocsPerRun(50, func() {
		if r.stepSkip(r.batchSize) == 0 {
			t.Fatal("stream ended mid-measurement")
		}
	})
	if skipAllocs != 0 {
		t.Errorf("stepSkip allocates %.1f per batch, want 0", skipAllocs)
	}
}

// TestSampledExactModeUntouched: a runner with Sampling unset runs the
// identical exact engine — Result carries no SamplingInfo.
func TestSampledExactModeUntouched(t *testing.T) {
	r := buildSampled(t, "roms", 9, SamplingConfig{}, false, nil)
	if res := r.Run(30_000); res.Sampling != nil {
		t.Errorf("exact Result carries SamplingInfo: %+v", res.Sampling)
	}
}
