package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"m5/internal/baseline"
	m5mgr "m5/internal/m5"
	"m5/internal/obs"
	"m5/internal/tracker"
	"m5/internal/workload"
	"m5/internal/workload/tape"
)

// ffMachine pairs a config mutation with a post-build arm step so exact
// and fast-forward runners are assembled identically except for the flag.
type ffMachine struct {
	name  string
	bench string
	seed  int64
	cfg   func(c *Config)
	arm   func(r *Runner)
}

func buildFFRunner(t *testing.T, m ffMachine, fastForward bool, pool *tape.Pool) *Runner {
	t.Helper()
	var gen workload.Generator
	var err error
	if pool != nil {
		gen, err = pool.Open(m.bench, workload.ScaleTiny, m.seed)
	} else {
		gen, err = workload.New(m.bench, workload.ScaleTiny, m.seed)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workload: gen, Metrics: obs.New(), FastForward: fastForward}
	if m.cfg != nil {
		m.cfg(&cfg)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		gen.Close()
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	if m.arm != nil {
		m.arm(r)
	}
	return r
}

// assertFFEqual runs both machines for n accesses and requires
// byte-identical results: every Result field (including the obs
// snapshot), the simulated clock, and the TLB/cache counters underneath.
func assertFFEqual(t *testing.T, exact, ff *Runner, n int) {
	t.Helper()
	want := exact.Run(n)
	got := ff.Run(n)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fast-forward Result diverged from exact:\n got %+v\nwant %+v", got, want)
	}
	if ff.clockNs != exact.clockNs {
		t.Errorf("clock diverged: ff %d vs exact %d", ff.clockNs, exact.clockNs)
	}
	if ff.Sys.KernelNs() != exact.Sys.KernelNs() {
		t.Errorf("kernel time diverged: ff %d vs exact %d", ff.Sys.KernelNs(), exact.Sys.KernelNs())
	}
	ffTLB, exTLB := ff.Sys.TLB(0), exact.Sys.TLB(0)
	if ffTLB.Hits() != exTLB.Hits() || ffTLB.Misses() != exTLB.Misses() || ffTLB.Shootdowns() != exTLB.Shootdowns() {
		t.Errorf("TLB counters diverged: ff %d/%d/%d vs exact %d/%d/%d",
			ffTLB.Hits(), ffTLB.Misses(), ffTLB.Shootdowns(),
			exTLB.Hits(), exTLB.Misses(), exTLB.Shootdowns())
	}
	for _, lv := range []struct {
		name   string
		ff, ex interface{ Hits() uint64 }
	}{
		{"L1", ff.Cache.L1(), exact.Cache.L1()},
		{"L2", ff.Cache.L2(), exact.Cache.L2()},
		{"LLC", ff.Cache.LLC(), exact.Cache.LLC()},
	} {
		if lv.ff.Hits() != lv.ex.Hits() {
			t.Errorf("%s hits diverged: ff %d vs exact %d", lv.name, lv.ff.Hits(), lv.ex.Hits())
		}
	}
	if ff.Cache.Accesses() != exact.Cache.Accesses() {
		t.Errorf("cache accesses diverged: ff %d vs exact %d", ff.Cache.Accesses(), exact.Cache.Accesses())
	}
}

// ffMachines covers every interaction the engine claims to preserve:
// bare runs, daemons reached through ticks (M5/HPT), daemons reached
// through fault hooks with inline promotion (ANB), a kernel-charging
// bounded miss sink (PEBS as both daemon and sink), op-latency streams
// (redis), the row-buffer DRAM model, prefetching, and a non-default
// batch size.
func ffMachines() []ffMachine {
	return []ffMachine{
		{name: "bare", bench: "roms", seed: 9},
		{name: "m5-hpt", bench: "pr", seed: 3,
			cfg: func(c *Config) {
				c.HPT = &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5}
			},
			arm: func(r *Runner) {
				r.SetDaemon(m5mgr.NewManager(r.Sys, r.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
			}},
		{name: "anb-faults", bench: "mcf", seed: 1,
			arm: func(r *Runner) {
				r.SetDaemon(baseline.NewANB(r.Sys, baseline.ANBConfig{
					PeriodNs: 500_000, SamplePages: 64, Migrate: true,
				}))
			}},
		{name: "pebs-sink", bench: "redis", seed: 5,
			arm: func(r *Runner) {
				p := baseline.NewPEBS(r.Sys, baseline.PEBSConfig{SampleRate: 10, Migrate: true})
				r.AttachMissSink(p)
				r.SetDaemon(p)
			}},
		{name: "rowbuffer-prefetch", bench: "bfs", seed: 7,
			cfg: func(c *Config) {
				c.RowBuffer = true
				c.Cache = NewScaledCache(1 << 24)
				c.Cache.NextLinePrefetch = true
			}},
		{name: "batch-173", bench: "cc", seed: 2,
			cfg: func(c *Config) { c.BatchSize = 173 }},
	}
}

// TestFastForwardMatchesExact is the equivalence gate: for every machine
// shape, fast-forward must be byte-identical to exact mode — with live
// generators and with tape replay.
func TestFastForwardMatchesExact(t *testing.T) {
	const n = 600_000
	for _, m := range ffMachines() {
		m := m
		t.Run("live/"+m.name, func(t *testing.T) {
			exact := buildFFRunner(t, m, false, nil)
			ff := buildFFRunner(t, m, true, nil)
			assertFFEqual(t, exact, ff, n)
		})
		t.Run("tape/"+m.name, func(t *testing.T) {
			pool := tape.NewPool(0, nil)
			t.Cleanup(pool.Close)
			exact := buildFFRunner(t, m, false, pool)
			ff := buildFFRunner(t, m, true, pool)
			assertFFEqual(t, exact, ff, n)
		})
	}
}

// TestFastForwardSpansSplitConsistently pins that fast-forward never
// buffers pulled accesses across StepBatch calls: splitting a run into
// uneven spans (as warmup + measurement loops do) lands on the same
// machine state, and checkpoints stay in lockstep with exact mode.
func TestFastForwardSpansSplitConsistently(t *testing.T) {
	m := ffMachines()[1] // m5-hpt: daemon ticks across span boundaries
	whole := buildFFRunner(t, m, true, nil)
	split := buildFFRunner(t, m, true, nil)
	whole.Run(300_000)
	for _, span := range []int{1, 999, 17, 100_000, 1, 198_982} {
		split.Run(span)
	}
	if whole.clockNs != split.clockNs || whole.accesses != split.accesses {
		t.Errorf("split spans diverged: clock %d vs %d, accesses %d vs %d",
			whole.clockNs, split.clockNs, whole.accesses, split.accesses)
	}

	// Checkpoint lockstep needs a bare runner (no daemon, no metrics).
	bare := ffMachine{name: "bare", bench: "roms", seed: 4,
		cfg: func(c *Config) { c.Metrics = nil }}
	exact := buildFFRunner(t, bare, false, nil)
	ff := buildFFRunner(t, bare, true, nil)
	exact.Run(250_000)
	ff.Run(250_000)
	cpE, err := exact.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cpF, err := ff.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cpE.gen.Consumed != cpF.gen.Consumed {
		t.Errorf("consumed counts diverged: exact %d vs ff %d", cpE.gen.Consumed, cpF.gen.Consumed)
	}
	if cpF.gen.Consumed != ff.accesses {
		t.Errorf("fast-forward buffered ahead: consumed %d, executed %d",
			cpF.gen.Consumed, ff.accesses)
	}
}

// TestFastForwardProperty is the differential fuzz gate: random
// (workload, config, horizon) triples through both paths, asserting
// byte-identical metrics and clocks. The rand seed is fixed so failures
// replay.
func TestFastForwardProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := workload.Names()
	daemons := []string{"none", "m5", "anb", "pebs"}
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		m := ffMachine{
			name:  "prop",
			bench: names[rng.Intn(len(names))],
			seed:  rng.Int63n(1000),
		}
		var (
			ctxNs    = uint64(rng.Intn(2_000_000) + 50_000)
			batch    = rng.Intn(2048) + 1
			rowBuf   = rng.Intn(2) == 0
			daemon   = daemons[rng.Intn(len(daemons))]
			periodNs = uint64(rng.Intn(1_500_000) + 100_000)
			accesses = rng.Intn(200_000) + 100_000
		)
		m.cfg = func(c *Config) {
			c.CtxSwitchPeriodNs = ctxNs
			c.BatchSize = batch
			c.RowBuffer = rowBuf
			if daemon == "m5" {
				c.HPT = &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5}
			}
		}
		m.arm = func(r *Runner) {
			switch daemon {
			case "m5":
				r.SetDaemon(m5mgr.NewManager(r.Sys, r.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
			case "anb":
				r.SetDaemon(baseline.NewANB(r.Sys, baseline.ANBConfig{
					PeriodNs: periodNs, SamplePages: 64, Migrate: true,
				}))
			case "pebs":
				p := baseline.NewPEBS(r.Sys, baseline.PEBSConfig{
					SampleRate: 10, PeriodNs: periodNs, Migrate: true,
				})
				r.AttachMissSink(p)
				r.SetDaemon(p)
			}
		}
		t.Run("", func(t *testing.T) {
			t.Logf("trial %d: bench=%s seed=%d ctx=%d batch=%d rowbuf=%v daemon=%s period=%d n=%d",
				trial, m.bench, m.seed, ctxNs, batch, rowBuf, daemon, periodNs, accesses)
			exact := buildFFRunner(t, m, false, nil)
			ff := buildFFRunner(t, m, true, nil)
			assertFFEqual(t, exact, ff, accesses)
		})
	}
}

// TestFastForwardUnboundedSinkFallsBack pins the safety valve: a miss
// sink without a kernel-cost bound keeps the engine on the exact path
// (still correct, never wrong).
func TestFastForwardUnboundedSinkFallsBack(t *testing.T) {
	m := ffMachine{name: "unbounded", bench: "roms", seed: 1,
		arm: func(r *Runner) { r.AttachMissSink(&countingSink{}) }}
	ff := buildFFRunner(t, m, true, nil)
	if !ff.sinkUnbounded {
		t.Fatal("countingSink should be unbounded")
	}
	ff.Run(10_000)
	if ff.ffs != nil {
		t.Error("fast-forward engaged despite an unbounded sink")
	}
	exact := buildFFRunner(t, m, false, nil)
	exact.Run(10_000)
	if ff.clockNs != exact.clockNs {
		t.Errorf("fallback diverged: %d vs %d", ff.clockNs, exact.clockNs)
	}
}

// TestFastForwardZeroAllocs pins the steady-state fast-forward batch at
// zero allocations: columnar tape decode, translate, classify, and
// commit all run on preallocated scratch.
func TestFastForwardZeroAllocs(t *testing.T) {
	pool := tape.NewPool(0, nil)
	defer pool.Close()
	// Record the stream well past what the measurement consumes, so the
	// measured cursor replays committed blocks only.
	rec, err := pool.Open("roms", workload.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]workload.Access, 4096)
	for left := 1_500_000; left > 0; {
		n := workload.NextBatch(rec, buf)
		if n == 0 {
			t.Fatal("stream ended while recording")
		}
		left -= n
	}
	rec.Close()

	gen, err := pool.Open("roms", workload.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Workload:    gen,
		FastForward: true,
		HPT:         &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5},
	})
	if err != nil {
		gen.Close()
		t.Fatal(err)
	}
	defer r.Close()
	r.Run(400_000) // fault in the arena, build the engine scratch
	if r.ffs == nil {
		t.Fatal("fast-forward did not engage")
	}
	// Gate the fast-forward body directly (the pattern runBatch's gate
	// uses): the annotation-coverage meta-test walks call chains from
	// exactly these closures.
	allocs := testing.AllocsPerRun(50, func() {
		if r.stepBatchFF(r.batchSize) == 0 {
			t.Fatal("stream ended mid-measurement")
		}
	})
	if allocs != 0 {
		t.Errorf("fast-forward StepBatch allocates %.1f objects per batch, want 0", allocs)
	}
}

// BenchmarkStepBatchFastForward measures the fast-forward engine against
// BenchmarkRunnerStepBatch (the exact path) on the same machine shape.
func BenchmarkStepBatchFastForward(b *testing.B) {
	wl := workload.MustNew("roms", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{
		Workload:    wl,
		FastForward: true,
		HPT:         &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	r.Run(200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.StepBatch(1024) == 0 {
			b.Fatal("stream ended")
		}
	}
	b.SetBytes(1024)
}
