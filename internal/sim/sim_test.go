package sim

import (
	"testing"

	"m5/internal/baseline"
	m5mgr "m5/internal/m5"
	"m5/internal/tiermem"
	"m5/internal/tracker"
	"m5/internal/workload"
)

func newRunner(t *testing.T, bench string, cfg Config) *Runner {
	t.Helper()
	if cfg.Workload == nil {
		cfg.Workload = workload.MustNew(bench, workload.ScaleTiny, 1)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRunnerBasics(t *testing.T) {
	r := newRunner(t, "redis", Config{})
	res := r.Run(200_000)
	if res.Accesses != 200_000 {
		t.Fatalf("Accesses = %d", res.Accesses)
	}
	if res.ElapsedNs == 0 || res.AccessesPerSec == 0 {
		t.Error("time must advance")
	}
	if res.Daemon != "none" {
		t.Errorf("Daemon = %q", res.Daemon)
	}
	// All pages start on CXL, so early DRAM traffic is CXL-only.
	if res.DRAMReads[tiermem.NodeCXL] == 0 {
		t.Error("expected CXL DRAM reads")
	}
	if res.DRAMReads[tiermem.NodeDDR] != 0 {
		t.Error("no DDR reads without migration")
	}
	if res.CXLReadShare() != 1 {
		t.Errorf("CXLReadShare = %v", res.CXLReadShare())
	}
	// Redis carries op markers.
	if res.OpCount == 0 || res.P99OpNs < res.P50OpNs {
		t.Errorf("op latency: count=%d p50=%v p99=%v", res.OpCount, res.P50OpNs, res.P99OpNs)
	}
}

func TestRunnerRequiresWorkload(t *testing.T) {
	if _, err := NewRunner(Config{}); err == nil {
		t.Error("missing workload should error")
	}
}

func TestCacheFiltersTraffic(t *testing.T) {
	r := newRunner(t, "pr", Config{})
	res := r.Run(300_000)
	dram := res.DRAMReads[0] + res.DRAMReads[1]
	if dram == 0 {
		t.Fatal("no DRAM traffic at all")
	}
	if dram >= res.Accesses {
		t.Errorf("cache filtered nothing: %d DRAM reads for %d accesses", dram, res.Accesses)
	}
}

func TestNoMigrationVsM5(t *testing.T) {
	// The headline Figure 9 property in miniature: with a skewed
	// workload, M5 migration beats no migration on elapsed time.
	run := func(withM5 bool) Result {
		wl := workload.MustNew("roms", workload.ScaleTiny, 1)
		r, err := NewRunner(Config{
			Workload: wl,
			HPT:      &tracker.Config{Algorithm: tracker.CMSketch, Entries: 32 * 1024, K: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if withM5 {
			mgr := m5mgr.NewManager(r.Sys, r.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly})
			r.SetDaemon(mgr)
		}
		r.Run(500_000) // warm-up: let migration reach steady state
		return r.Run(1_500_000)
	}
	none := run(false)
	withM5 := run(true)
	if withM5.Promotions == 0 {
		t.Fatal("M5 migrated nothing")
	}
	speedup := withM5.Speedup(none)
	if speedup <= 1.0 {
		t.Errorf("M5 speedup = %.3f, want > 1", speedup)
	}
	if withM5.CXLReadShare() >= none.CXLReadShare() {
		t.Error("migration should shift reads to DDR")
	}
}

func TestDaemonInterferenceCostsTime(t *testing.T) {
	// §4.2: identification overhead with migration disabled slows the
	// workload. DAMON in profile mode burns kernel time scanning PTEs.
	run := func(withDaemon bool) Result {
		wl := workload.MustNew("redis", workload.ScaleTiny, 1)
		r, err := NewRunner(Config{Workload: wl})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if withDaemon {
			r.SetDaemon(baseline.NewDAMON(r.Sys, baseline.DAMONConfig{
				PeriodNs: 200_000, AggregationTicks: 4,
			}))
		}
		return r.Run(800_000)
	}
	without := run(false)
	with := run(true)
	if with.KernelNs <= without.KernelNs {
		t.Error("DAMON should consume kernel time")
	}
	if with.ElapsedNs <= without.ElapsedNs {
		t.Error("identification overhead should slow the workload")
	}
	if with.Promotions != 0 {
		t.Error("profiling mode must not migrate")
	}
}

func TestANBEndToEnd(t *testing.T) {
	wl := workload.MustNew("mcf", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetDaemon(baseline.NewANB(r.Sys, baseline.ANBConfig{
		PeriodNs: 500_000, SamplePages: 64, Migrate: true,
	}))
	res := r.Run(2_000_000)
	if res.Promotions == 0 {
		t.Error("ANB should have promoted pages")
	}
	if res.DRAMReads[tiermem.NodeDDR] == 0 {
		t.Error("promoted pages should serve DDR reads")
	}
}

func TestPEBSAttachesAsMissSink(t *testing.T) {
	wl := workload.MustNew("mcf", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := baseline.NewPEBS(r.Sys, baseline.PEBSConfig{SampleRate: 10, Migrate: true})
	r.AttachMissSink(p)
	r.SetDaemon(p)
	res := r.Run(2_000_000)
	if p.Samples() == 0 {
		t.Fatal("PEBS saw no miss stream")
	}
	if res.Promotions == 0 {
		t.Error("PEBS should promote sampled-hot pages")
	}
}

func TestPACSeesOnlyCXLTraffic(t *testing.T) {
	wl := workload.MustNew("redis", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{Workload: wl, EnablePAC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res := r.Run(400_000)
	pacTotal := r.Ctrl.PAC.Total()
	want := res.DRAMReads[tiermem.NodeCXL] + res.DRAMWrites[tiermem.NodeCXL]
	if pacTotal != want {
		t.Errorf("PAC counted %d, want %d (CXL reads+writes)", pacTotal, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		wl := workload.MustNew("cc", workload.ScaleTiny, 7)
		r, err := NewRunner(Config{Workload: wl})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		return r.Run(300_000)
	}
	a, b := run(), run()
	if a.ElapsedNs != b.ElapsedNs || a.DRAMReads != b.DRAMReads {
		t.Errorf("same seed must reproduce identical runs: %+v vs %+v", a, b)
	}
}

func TestScaledCacheClamps(t *testing.T) {
	small := NewScaledCache(1 << 12)
	if small.LLCWayBytes*small.LLCWays < 64<<10 {
		t.Error("LLC should clamp up to 64KB")
	}
	huge := NewScaledCache(1 << 40)
	if huge.LLCWayBytes*huge.LLCWays > 8<<20 {
		t.Error("LLC should clamp down to 8MB")
	}
}
