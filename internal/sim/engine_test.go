package sim

import (
	"reflect"
	"testing"

	m5mgr "m5/internal/m5"
	"m5/internal/tiermem"
	"m5/internal/trace"
	"m5/internal/tracker"
	"m5/internal/workload"
)

// runUnbatched mirrors Run's span accounting but advances the machine one
// Step at a time — the reference the batched engine must match exactly.
func runUnbatched(r *Runner, n int) Result {
	startNs := r.clockNs
	startKernel := r.Sys.KernelNs()
	startAccesses := r.accesses
	startReads, startWrites := r.dramReads, r.dramWrites
	r.opLat.Reset()
	for i := 0; i < n; i++ {
		if !r.Step() {
			break
		}
	}
	res := Result{
		Workload:   r.gen.Name(),
		Accesses:   r.accesses - startAccesses,
		ElapsedNs:  r.clockNs - startNs,
		KernelNs:   r.Sys.KernelNs() - startKernel,
		Promotions: r.Sys.Promotions(),
		Demotions:  r.Sys.Demotions(),
	}
	if r.daemon != nil {
		res.Daemon = r.daemon.Name()
	} else {
		res.Daemon = "none"
	}
	for node := 0; node < 2; node++ {
		res.DRAMReads[node] = r.dramReads[node] - startReads[node]
		res.DRAMWrites[node] = r.dramWrites[node] - startWrites[node]
	}
	if r.opLat.Len() > 0 {
		res.OpCount = uint64(r.opLat.Len())
		res.P50OpNs = r.opLat.Percentile(50)
		res.P99OpNs = r.opLat.Percentile(99)
	}
	if res.ElapsedNs > 0 {
		res.AccessesPerSec = float64(res.Accesses) * 1e9 / float64(res.ElapsedNs)
	}
	return res
}

// countingSink records how many DRAM accesses it observed; it adds no
// simulated time, so batched and unbatched runs must feed it identically.
type countingSink struct {
	n    uint64
	last trace.Access
}

func (s *countingSink) Observe(a trace.Access) { s.n++; s.last = a }

// TestStepBatchMatchesStep pins the batched engine's equivalence claim:
// Run (which drives StepBatch) and a Step loop with identical accounting
// produce byte-identical Results from identical machines — including the
// daemon-tick, op-latency, and miss-sink paths the batched loop guards.
func TestStepBatchMatchesStep(t *testing.T) {
	build := func(bench string, withDaemon, withSink bool) (*Runner, *countingSink) {
		wl := workload.MustNew(bench, workload.ScaleTiny, 9)
		r, err := NewRunner(Config{
			Workload: wl,
			HPT:      &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Close)
		var sink *countingSink
		if withSink {
			sink = &countingSink{}
			r.AttachMissSink(sink)
		}
		if withDaemon {
			r.SetDaemon(m5mgr.NewManager(r.Sys, r.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
		}
		return r, sink
	}
	cases := []struct {
		name   string
		bench  string
		daemon bool
		sink   bool
	}{
		{"bare", "roms", false, false},
		{"kvs-daemon-sink", "redis", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 400_000
			batched, bSink := build(tc.bench, tc.daemon, tc.sink)
			unbatched, uSink := build(tc.bench, tc.daemon, tc.sink)
			got := batched.Run(n)
			want := runUnbatched(unbatched, n)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("batched Run diverged from Step loop:\n got %+v\nwant %+v", got, want)
			}
			if batched.clockNs != unbatched.clockNs {
				t.Errorf("clock diverged: %d vs %d", batched.clockNs, unbatched.clockNs)
			}
			if tc.sink {
				if bSink.n == 0 {
					t.Fatal("sink saw no traffic")
				}
				if bSink.n != uSink.n || bSink.last != uSink.last {
					t.Errorf("sink streams diverged: %d/%+v vs %d/%+v", bSink.n, bSink.last, uSink.n, uSink.last)
				}
			}
		})
	}
}

// TestRunBatchZeroAllocs pins the batched hot loop at zero allocations per
// batch once the machine is warm: the engine reuses its access buffer and
// scratch trace record, and every layer below it (cache, TLB, nodes,
// trackers) runs on preallocated state.
func TestRunBatchZeroAllocs(t *testing.T) {
	wl := workload.MustNew("roms", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{
		Workload: wl,
		HPT:      &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Run(200_000) // fault in the arena and reach steady state

	buf := make([]workload.Access, runnerBatch)
	n := workload.NextBatch(r.gen, buf)
	if n != runnerBatch {
		t.Fatalf("NextBatch = %d, want %d", n, runnerBatch)
	}
	allocs := testing.AllocsPerRun(50, func() {
		r.runBatch(buf[:n])
	})
	if allocs != 0 {
		t.Errorf("runBatch allocates %.1f objects per batch, want 0", allocs)
	}
}

// TestCheckpointForkDeterminism pins the warmup-sharing contract: a fork
// continues bit-identically to (a) a from-scratch runner warmed the same
// way — including when both install the same daemon at the warmup boundary
// — and (b) the original runner the checkpoint was taken from.
func TestCheckpointForkDeterminism(t *testing.T) {
	const warmup, measure = 150_000, 250_000
	cfg := func() Config {
		return Config{
			Workload: workload.MustNew("roms", workload.ScaleTiny, 1),
			HPT:      &tracker.Config{Algorithm: tracker.SpaceSaving, Entries: 128, K: 5},
		}
	}
	warm, err := NewRunner(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warm.Run(warmup)
	cp, err := warm.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// (a) daemon installed on the fork at the checkpoint == daemon
	// installed on a from-scratch runner at the warmup boundary.
	fork, err := cp.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()
	fork.SetDaemon(m5mgr.NewManager(fork.Sys, fork.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
	scratch, err := NewRunner(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer scratch.Close()
	scratch.Run(warmup)
	scratch.SetDaemon(m5mgr.NewManager(scratch.Sys, scratch.Ctrl, m5mgr.ManagerConfig{Mode: m5mgr.HPTOnly}))
	forkRes, scratchRes := fork.Run(measure), scratch.Run(measure)
	if !reflect.DeepEqual(forkRes, scratchRes) {
		t.Errorf("fork diverged from from-scratch warmup:\n got %+v\nwant %+v", forkRes, scratchRes)
	}
	if forkRes.Promotions == 0 {
		t.Error("daemon on fork migrated nothing — test exercises too little")
	}

	// (b) a bare fork continues exactly like the original runner.
	fork2, err := cp.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork2.Close()
	origRes, fork2Res := warm.Run(measure), fork2.Run(measure)
	if !reflect.DeepEqual(origRes, fork2Res) {
		t.Errorf("fork diverged from original:\n got %+v\nwant %+v", fork2Res, origRes)
	}
}

// TestCheckpointRefusesExternalState: state the deep clone cannot reach
// must be rejected, not silently dropped.
func TestCheckpointRefusesExternalState(t *testing.T) {
	t.Run("daemon", func(t *testing.T) {
		r := newRunner(t, "roms", Config{})
		r.SetDaemon(stubPolicy{})
		if _, err := r.Checkpoint(); err == nil {
			t.Error("daemon-carrying runner must refuse to checkpoint")
		}
	})
	t.Run("miss-sink", func(t *testing.T) {
		r := newRunner(t, "roms", Config{})
		r.AttachMissSink(&countingSink{})
		if _, err := r.Checkpoint(); err == nil {
			t.Error("sink-carrying runner must refuse to checkpoint")
		}
	})
	t.Run("row-buffer", func(t *testing.T) {
		r := newRunner(t, "roms", Config{RowBuffer: true})
		if _, err := r.Checkpoint(); err == nil {
			t.Error("row-buffer runner must refuse to checkpoint")
		}
	})
}

func benchRunner(b *testing.B) *Runner {
	b.Helper()
	wl := workload.MustNew("roms", workload.ScaleTiny, 1)
	r, err := NewRunner(Config{Workload: wl})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Close)
	r.Run(100_000) // fault in the arena so the loop measures steady state
	return r
}

func BenchmarkRunnerStep(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Step() {
			b.Fatal("stream ended")
		}
	}
}

func BenchmarkRunnerStepBatch(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for left := b.N; left > 0; {
		did := r.StepBatch(left)
		if did == 0 {
			b.Fatal("stream ended")
		}
		left -= did
	}
}

// stubPolicy is the smallest possible Daemon (= tiermem.Policy): it shows
// the checkpoint gate fires on any installed daemon, not just real ones.
type stubPolicy struct{}

func (stubPolicy) Name() string               { return "stub" }
func (stubPolicy) PeriodNs() uint64           { return 1_000_000 }
func (stubPolicy) Tick(uint64)                {}
func (stubPolicy) Stats() tiermem.PolicyStats { return tiermem.PolicyStats{} }
