//m5:floatestimate this file IS the sampling-estimate layer: the Horvitz-Thompson estimator and the CLT error budget are float math by construction, and sampled-mode results are estimates, not byte-identity metrics
//
// Tiered-fidelity execution (SMARTS-style sampled simulation): a sampled
// Run alternates *functional warming* stretches with periodic *detailed
// measurement* windows.
//
// Functional stretches keep every piece of architectural state evolving
// exactly as exact mode would — TLB fills and shootdowns, page-table
// accessed/dirty bits, cache tag/LRU state via the batched classify
// kernel, tier residency counters, CXL device snoops (so PAC/WAC and the
// HPT/HWT trackers keep counting), miss-sink observes, row-buffer state —
// but skip the per-access clock arithmetic: the simulated clock advances
// once per batch at the current estimate of mean ns/access, so daemon
// ticks and context-switch flushes still fire at their simulated-time
// cadence.
//
// Detailed windows run the unmodified exact engine (the same StepBatch
// path, fast-forward included when enabled); each full window contributes
// one per-access-latency sample to a streaming Welford accumulator. The
// span's headline ElapsedNs is then estimated as mean(window ns/access) ×
// accesses, with a Student-t confidence interval (internal/stats) reported
// on the Result.
//
// Unlike fast-forward, sampling is deliberately NOT byte-identical: the
// contract is statistical — the equivalence harness
// (experiments.SampleCoverage) runs sampled vs. exact across seeds and
// checks the exact value falls inside the declared interval at the
// configured confidence. Exact mode (Sampling.Mode unset or "exact") is
// untouched and stays byte-identical.
//
// Window placement is a pure function of config and seed: the first
// window offset is a splitmix64 hash of (Sampling.Seed, stream position
// at Run start) reduced mod the period; subsequent windows follow at a
// fixed stride (systematic sampling). No RNG state is consulted, so two
// runs of the same config and seed produce identical schedules, results,
// and obs counters — the determinism tests pin this.
package sim

import (
	"fmt"
	"math"

	"m5/internal/cache"
	"m5/internal/mem"
	"m5/internal/stats"
	"m5/internal/tiermem"
	"m5/internal/trace"
	"m5/internal/workload"
)

// Sampling mode names (Config.Sampling.Mode). Empty means exact.
const (
	SampleModeExact   = "exact"
	SampleModeSampled = "sampled"
)

// Default sampling geometry: 4K-access detailed windows every 48K
// accesses, a state-exact functional warm prefix before each window, and
// 8x batch thinning in the stretches between. Chosen empirically so the
// default settings clear a 3x wall-clock speedup on the slowest harnesses
// while typical spans still collect ~10 windows per 500K accesses.
const (
	defaultDetailedWindow   = 4096
	defaultFunctionalStride = 45056
	// defaultFunctionalThin simulates 1 in N batches of the thinned
	// stretches at full architectural fidelity (crediting its DRAM/tracker
	// traffic for the N-1 skipped neighbours); the rest only advance the
	// stream and the coarse clock.
	defaultFunctionalThin = 8
	// defaultWarmPrefix is how many accesses before each detailed window
	// run at full functional fidelity (no thinning), so the window opens
	// on freshly-warmed cache and TLB state.
	defaultWarmPrefix = 4096
	// sampleMinWindows is the floor on measured windows before a TargetCI
	// early stop may trigger: t-intervals over fewer samples are too
	// fragile to act on.
	sampleMinWindows = 8
	// sampleConfidence is the confidence level of every reported
	// interval (and the TargetCI stop rule).
	sampleConfidence = 0.95
)

// SamplingConfig selects the engine's fidelity tier.
type SamplingConfig struct {
	// Mode is "" or "exact" for the byte-identical exact engine, or
	// "sampled" for SMARTS-style sampled execution.
	Mode string
	// DetailedWindow is the length (accesses) of each detailed
	// measurement window. Default 4096.
	DetailedWindow int
	// FunctionalStride is the length (accesses) of the functional-warming
	// stretch between windows. Default 45056 (so one window per 48K
	// accesses).
	FunctionalStride int
	// TargetCI, when positive, is a relative error budget: once at least
	// sampleMinWindows full windows are measured and the 95% CI
	// half-width falls below TargetCI × mean, the rest of the span runs
	// purely functional. Zero measures every scheduled window.
	TargetCI float64
	// FunctionalThin subsamples the functional stretches at batch
	// granularity: 1 in FunctionalThin batches runs the full functional
	// kernel (translation, cache, device snoops) with its DRAM and tracker
	// traffic credited once per skipped neighbour (a Horvitz-Thompson
	// estimate, so traffic counters stay unbiased); the other batches only
	// advance the stream and the coarse clock. 1 disables thinning;
	// default 8.
	FunctionalThin int
	// WarmPrefix is how many accesses immediately before each detailed
	// window run at full functional fidelity regardless of thinning, so
	// windows measure against freshly-warmed cache/TLB state. Default 4096.
	WarmPrefix int
	// Seed perturbs the first-window offset (systematic-sampling phase).
	// Window placement is a pure function of (Seed, config, stream
	// position); no RNG state is involved.
	Seed int64
}

// Enabled reports whether the config selects sampled execution.
func (s SamplingConfig) Enabled() bool { return s.Mode == SampleModeSampled }

// withDefaults fills the sampling geometry defaults.
//
//m5:plumb SamplingConfig ignore=Mode,TargetCI,Seed
func (s SamplingConfig) withDefaults() SamplingConfig {
	if !s.Enabled() {
		return s
	}
	if s.DetailedWindow == 0 {
		s.DetailedWindow = defaultDetailedWindow
	}
	if s.FunctionalStride == 0 {
		s.FunctionalStride = defaultFunctionalStride
	}
	if s.FunctionalThin == 0 {
		s.FunctionalThin = defaultFunctionalThin
	}
	if s.WarmPrefix == 0 {
		s.WarmPrefix = defaultWarmPrefix
	}
	if s.WarmPrefix > s.FunctionalStride {
		// A warm prefix longer than the stretch itself just means the
		// whole stretch runs unthinned.
		s.WarmPrefix = s.FunctionalStride
	}
	return s
}

// validate rejects malformed sampling geometry.
//
//m5:plumb SamplingConfig ignore=Seed
func (s SamplingConfig) validate() error {
	switch s.Mode {
	case "", SampleModeExact, SampleModeSampled:
	default:
		return fmt.Errorf("sim: unknown sampling mode %q (want %q or %q)", s.Mode, SampleModeExact, SampleModeSampled)
	}
	if s.DetailedWindow < 0 || s.FunctionalStride < 0 {
		return fmt.Errorf("sim: sampling window %d / stride %d must be non-negative", s.DetailedWindow, s.FunctionalStride)
	}
	if s.FunctionalThin < 0 || s.WarmPrefix < 0 {
		return fmt.Errorf("sim: sampling thin %d / warm prefix %d must be non-negative", s.FunctionalThin, s.WarmPrefix)
	}
	if s.TargetCI < 0 || s.TargetCI >= 1 {
		return fmt.Errorf("sim: sampling target CI %v must be in [0, 1)", s.TargetCI)
	}
	return nil
}

// SamplingInfo is attached to a Result produced by a sampled Run, so
// consumers can tell fidelity tiers apart and propagate the error budget.
type SamplingInfo struct {
	// Mode is SampleModeSampled (exact Results carry a nil *SamplingInfo).
	Mode string
	// WindowsMeasured is how many full detailed windows produced latency
	// samples this span.
	WindowsMeasured int
	// AccessesDetailed / AccessesFunctional split the span's accesses by
	// execution tier; AccessesSkipped is the subset of the functional
	// accesses that were batch-thinned (stream advanced, traffic credited
	// statistically by their simulated neighbours).
	AccessesDetailed   uint64
	AccessesFunctional uint64
	AccessesSkipped    uint64
	// EstimateNs mirrors Result.ElapsedNs: mean window ns/access × span
	// accesses (or the exact clock delta when the span was too short to
	// sample — see WindowsMeasured == 0).
	EstimateNs uint64
	// CIHalfNs is the Student-t half-width of the ElapsedNs estimate at
	// Confidence, and RelCIHalf the same relative to the estimate. Both
	// are 0 when fewer than two windows were measured — an interval needs
	// two samples; check WindowsMeasured before trusting them.
	CIHalfNs   float64
	RelCIHalf  float64
	Confidence float64
}

// sampleState is the per-Run scratch of the sampled scheduler.
type sampleState struct {
	// winNs accumulates one sample per full detailed window: the window's
	// mean *user-side* ns/access (clock delta minus kernel delta). Kernel
	// time needs no estimation — the functional loop tracks it exactly —
	// so it enters the span estimate as an exact additive term with zero
	// variance, and front-loaded transients like first-touch faults never
	// bias the extrapolation.
	winNs stats.Running
	// est is the current mean user-side ns/access estimate the functional
	// clock advances at: a cost-model prior before the first window, then
	// the running window mean.
	est float64
	// ciDone flips when the TargetCI budget is met; the rest of the span
	// runs purely functional.
	ciDone     bool
	detailed   uint64
	functional uint64
	skipped    uint64
	// owed counts thinned-away batches since the last full-fidelity
	// functional batch; that batch credits its traffic 1+owed times.
	owed int
}

// sampleOffset mixes the sampling seed with the stream position at span
// start (splitmix64 finalizer) to place the first window. Deterministic
// by construction: same seed and position, same placement.
func sampleOffset(seed int64, position uint64) uint64 {
	z := uint64(seed) ^ (position * 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// samplePriorNs is the coarse per-access prior that paces the functional
// clock until the first window is measured: an L1 hit plus a small mixed
// DRAM share. Only tick/flush cadence depends on it, and only for the
// first fraction of a period.
func (r *Runner) samplePriorNs() float64 {
	read := (r.costs.DDRReadNs + r.costs.CXLReadNs) / 2
	return float64(r.costs.L1HitNs) + float64(read)/32
}

// runSampled is Run's sampled-mode body: functional warming between
// systematically-placed detailed windows, then an estimate with a
// Student-t interval from the measured windows.
func (r *Runner) runSampled(n int) Result {
	w := r.cfg.Sampling.DetailedWindow
	period := w + r.cfg.Sampling.FunctionalStride
	span := r.beginSpan()
	st := &r.smp
	*st = sampleState{est: r.samplePriorNs()}
	if r.estPrior > 0 {
		st.est = r.estPrior
	}

	if n < 2*period && r.estPrior > 0 {
		// Too short to schedule windows of its own, but an earlier span of
		// this runner (or of the checkpoint it was forked from) already
		// measured the mean user-side latency: run the whole span thinned
		// against that primed estimate. The functional clock advances at
		// est, so the span's ElapsedNs is the extrapolation — with no
		// fresh windows its interval stays 0 (WindowsMeasured reports 0;
		// the uncertainty lives with the spans that measured the prior).
		st.functional += uint64(r.runThinnedSpan(n))
	} else if n < 2*period {
		// Too short to form a schedule worth estimating from, and no prior
		// to extrapolate with: run it exactly. The "estimate" is then the
		// exact value with zero uncertainty (WindowsMeasured stays 0).
		st.detailed += uint64(r.runExactSpan(n))
	} else {
		pos := 0
		next := int(sampleOffset(r.cfg.Sampling.Seed, span.accesses) % uint64(period))
		warm := r.cfg.Sampling.WarmPrefix
		for pos < n {
			if st.ciDone || pos < next {
				target := n
				windowAhead := false
				if !st.ciDone && next < n {
					target = next
					windowAhead = true
				}
				// Thin the stretch at batch granularity, but close the
				// last warm accesses before a measured window at full
				// functional fidelity so the window opens on fresh
				// cache/TLB state.
				thinEnd := target
				if windowAhead && thinEnd-pos > warm {
					thinEnd -= warm
				} else if windowAhead {
					thinEnd = pos
				}
				ran := 0
				if thinEnd > pos {
					ran = r.runThinnedSpan(thinEnd - pos)
					pos += ran
				}
				if pos >= thinEnd && pos < target {
					fran := r.runFunctionalSpan(target - pos)
					pos += fran
					ran += fran
				}
				if ran == 0 {
					break
				}
				st.functional += uint64(ran)
				continue
			}
			want := w
			if n-pos < want {
				want = n - pos
			}
			clockBefore := r.clockNs
			kernelBefore := r.Sys.KernelNs()
			ran := r.runExactSpan(want)
			if ran == 0 {
				break
			}
			st.detailed += uint64(ran)
			pos += ran
			next += period
			if ran == w {
				// Only full windows become samples: a truncated tail
				// would inflate the variance for no coverage gain.
				user := (r.clockNs - clockBefore) - (r.Sys.KernelNs() - kernelBefore)
				st.winNs.Add(float64(user) / float64(ran))
				st.est = st.winNs.Mean()
				if tgt := r.cfg.Sampling.TargetCI; tgt > 0 && st.winNs.N() >= sampleMinWindows {
					if half := st.winNs.CIHalfWidth(sampleConfidence); half <= tgt*st.est {
						st.ciDone = true
					}
				}
			}
		}
	}

	spanAccesses := r.accesses - span.accesses
	windows := int(st.winNs.N())
	if windows >= 2 {
		// Prime later (possibly shorter) spans of this runner and of any
		// checkpoint forked from it with the measured mean.
		r.estPrior = st.winNs.Mean()
	}
	var estNs uint64
	var halfNs, rel float64
	if windows > 0 {
		// Total = exact span kernel time (tracked at full fidelity in
		// both tiers) + extrapolated user-side time. Only the user side
		// carries sampling uncertainty.
		spanKernel := r.Sys.KernelNs() - span.kernelNs
		estNs = spanKernel + uint64(math.Round(st.winNs.Mean()*float64(spanAccesses)))
		if windows >= 2 {
			halfNs = st.winNs.CIHalfWidth(sampleConfidence) * float64(spanAccesses)
			if estNs > 0 {
				rel = halfNs / float64(estNs)
			}
		}
	}
	// Span-delta counters plus the latest interval width, published
	// before the snapshot the Result carries. Registered only for sampled
	// runners, so exact-mode snapshots are unchanged byte for byte.
	r.obsSampleWindows.Add(uint64(windows))
	r.obsSampleDetailed.Add(st.detailed)
	r.obsSampleFunctional.Add(st.functional)
	r.obsSampleSkipped.Add(st.skipped)
	r.obsSampleCIHalf.Set(uint64(math.Round(rel * 1e6)))

	res := r.endSpan(span)
	if windows > 0 {
		res.ElapsedNs = estNs
		res.AccessesPerSec = 0
		if res.ElapsedNs > 0 {
			res.AccessesPerSec = float64(res.Accesses) * 1e9 / float64(res.ElapsedNs)
		}
	}
	res.Sampling = &SamplingInfo{
		Mode:               SampleModeSampled,
		WindowsMeasured:    windows,
		AccessesDetailed:   st.detailed,
		AccessesFunctional: st.functional,
		AccessesSkipped:    st.skipped,
		EstimateNs:         res.ElapsedNs,
		CIHalfNs:           halfNs,
		RelCIHalf:          rel,
		Confidence:         sampleConfidence,
	}
	return res
}

// runExactSpan drives the exact engine for up to k accesses and returns
// how many ran (short only when the stream ends).
func (r *Runner) runExactSpan(k int) int {
	ran := 0
	for ran < k {
		did := r.StepBatch(k - ran)
		if did == 0 {
			break
		}
		ran += did
	}
	return ran
}

// runFunctionalSpan drives the functional-warming loop for up to k
// accesses and returns how many ran. Every batch runs at full
// architectural fidelity (weight 1); thinned stretches go through
// runThinnedSpan instead.
func (r *Runner) runFunctionalSpan(k int) int {
	ran := 0
	for ran < k {
		did := r.stepFunctional(k-ran, 1)
		if did == 0 {
			break
		}
		ran += did
	}
	return ran
}

// runThinnedSpan drives a batch-thinned functional stretch: 1 in
// Sampling.FunctionalThin batches runs the full functional kernel, with
// its DRAM and tracker traffic credited once per skipped neighbour
// (Horvitz-Thompson, so traffic counters stay unbiased in expectation);
// the others advance the stream and coarse clock only. The skip debt
// (smp.owed) persists across spans of one Run so boundary batches still
// get credited.
func (r *Runner) runThinnedSpan(k int) int {
	thin := r.cfg.Sampling.FunctionalThin
	if thin <= 1 {
		return r.runFunctionalSpan(k)
	}
	st := &r.smp
	ran := 0
	for ran < k {
		var did int
		if st.owed >= thin-1 {
			did = r.stepFunctional(k-ran, 1+st.owed)
			if did > 0 {
				st.owed = 0
			}
		} else {
			did = r.stepSkip(k - ran)
			if did > 0 {
				st.owed++
				st.skipped += uint64(did)
			}
		}
		if did == 0 {
			break
		}
		ran += did
	}
	return ran
}

// stepSkip advances up to one batch of the workload stream without
// simulating it: the generator moves (tape cursors jump committed blocks
// without decoding, workload.ColumnarSkipper), the coarse clock advances
// at the current mean-latency estimate, and daemon ticks / context-switch
// flushes still fire on their simulated-time cadence — but no
// translation, cache, or device state is touched. The skipped traffic is
// credited statistically by the next full-fidelity batch (runThinnedSpan).
//
//m5:hotpath
func (r *Runner) stepSkip(max int) int {
	ff := r.ffs
	if ff == nil {
		//m5:coldpath one-time scratch construction on first functional batch.
		ff = r.ffInit()
	}
	if r.batch == nil {
		//m5:coldpath one-time batch buffer construction.
		r.batch = make([]workload.Access, r.batchSize)
	}
	want := max
	if want > r.batchSize {
		want = r.batchSize
	}
	n, ops := workload.SkipColumns(r.gen, r.batch, &ff.cols, want)
	if n == 0 {
		return 0
	}
	kernelBefore := r.Sys.KernelNs()
	r.accesses += uint64(n)
	r.clockNs += uint64(float64(n) * r.smp.est)
	if r.ctxNs > 0 && r.clockNs >= r.nextCtx {
		r.Sys.TLB(0).Flush()
		r.nextCtx = r.clockNs + r.ctxNs
	}
	if r.daemon != nil && r.clockNs >= r.nextTick {
		tickKernelBefore := r.Sys.KernelNs()
		r.daemon.Tick(r.clockNs)
		r.nextTick = r.clockNs + r.daemon.PeriodNs()
		r.obsTickKernel.Observe(r.Sys.KernelNs() - tickKernelBefore)
	}
	// Tick kernel time still stalls the core.
	r.clockNs += r.Sys.KernelNs() - kernelBefore
	if ops {
		r.opStart = r.clockNs
	}
	return n
}

// stepFunctional executes up to one batch of accesses at functional
// fidelity: translation (with the TLB memo short-circuit), the cache
// classify kernel, tier residency and bandwidth counters, device snoops
// and sink observes all run exactly as the detailed path would — but no
// per-access clock arithmetic. The clock advances once per batch at the
// current mean-latency estimate, keeping daemon ticks and context-switch
// flushes on their simulated-time cadence.
//
// weight > 1 means this batch also stands in for weight-1 thinned-away
// neighbour batches (runThinnedSpan): every DRAM read/write, device snoop,
// and sink observe is credited weight times, so traffic counters and
// tracker counts stay unbiased in expectation. State transitions (cache
// fills, row-buffer activations) happen once — repeating them would fake
// locality that the skipped batches may not have had.
//
//m5:hotpath
func (r *Runner) stepFunctional(max, weight int) int {
	ff := r.ffs
	if ff == nil {
		//m5:coldpath one-time scratch construction on first functional batch.
		ff = r.ffInit()
	}
	if r.batch == nil {
		//m5:coldpath one-time batch buffer construction.
		r.batch = make([]workload.Access, r.batchSize)
	}
	want := max
	if want > r.batchSize {
		want = r.batchSize
	}
	n := workload.NextColumns(r.gen, r.batch, &ff.cols, want)
	if n == 0 {
		return 0
	}
	// Kernel mm time (faults, scans, shootdowns, the daemon tick below)
	// is tracked exactly even at functional fidelity: only user-side
	// latency is estimated.
	kernelBefore := r.Sys.KernelNs()
	var (
		base = r.base.Addr()
		tlb  = r.Sys.TLB(0)
		tr   tiermem.TranslateResult
	)
	for i := 0; i < n; i++ {
		va := base + tiermem.VirtAddr(ff.cols.Offs[i])
		v := va.Page()
		if ff.memoOK && v == ff.memoVPN && tlb.RepeatHit(v) {
			ff.phys[i] = ff.memoBase + mem.PhysAddr(va.Offset())
		} else {
			write := ff.cols.Writes[uint(i)>>6]&(1<<(uint(i)&63)) != 0
			r.Sys.TranslateInto(0, va, write, &tr)
			ff.phys[i] = tr.Phys
			ff.memoVPN = v
			ff.memoBase = tr.Phys - mem.PhysAddr(va.Offset())
			ff.memoOK = true
		}
	}
	// The batch spans the whole columnar pull, so the batch-relative
	// write bitset is the columns' own.
	wbs := r.Cache.AccessBatch(ff.phys[:n], ff.cols.Writes, ff.class[:n], ff.wb[:0])
	ff.wb = wbs[:0]
	var (
		hasSinks = len(r.sinks) > 0
		remap    = r.remap
		scratch  trace.Access
		wbPos    = 0
		now      = r.clockNs
		uw       = uint64(weight)
	)
	for j := 0; j < n; j++ {
		c := ff.class[j]
		if c == 0 {
			continue // pure L1 hit: no DRAM traffic to account
		}
		if c.Level() == cache.HitMemory {
			phys := ff.phys[j]
			node := r.Sys.NodeOfAddr(phys)
			if remap != nil {
				node, _ = remap.Serve(phys.Word(), node)
			}
			r.Sys.Node(node).CountReads(uw)
			r.dramReads[node] += uw
			if ch := r.channels[node]; ch != nil {
				ch.Access(phys) // keep row-buffer locality state warm
			}
			if node == tiermem.NodeCXL || hasSinks {
				write := ff.cols.Writes[uint(j)>>6]&(1<<(uint(j)&63)) != 0
				scratch = trace.Access{Time: now, Addr: phys, Write: write}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.AccessN(scratch, uw)
				}
				if hasSinks {
					r.sinks.ObserveN(scratch, uw)
				}
			}
		}
		for k := c.Writebacks(); k > 0; k-- {
			wb := wbs[wbPos]
			wbPos++
			node := r.Sys.CountDRAMAccess(wb, true)
			r.Sys.Node(node).CountWrites(uw - 1)
			r.dramWrites[node] += uw
			if node == tiermem.NodeCXL || hasSinks {
				scratch = trace.Access{Time: now, Addr: wb, Write: true}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.AccessN(scratch, uw)
				}
				if hasSinks {
					r.sinks.ObserveN(scratch, uw)
				}
			}
		}
		if c.Prefetched() {
			pf := (ff.phys[j] &^ (mem.WordSize - 1)) + mem.WordSize
			node := r.Sys.CountDRAMAccess(pf, false)
			r.Sys.Node(node).CountReads(uw - 1)
			r.dramReads[node] += uw
			if node == tiermem.NodeCXL || hasSinks {
				scratch = trace.Access{Time: now, Addr: pf}
				if node == tiermem.NodeCXL {
					r.Ctrl.Device.AccessN(scratch, uw)
				}
				if hasSinks {
					r.sinks.ObserveN(scratch, uw)
				}
			}
		}
	}
	r.accesses += uint64(n)
	// Coarse clock: one advance per batch at the estimated mean
	// user-side rate (window means exclude kernel time, added exactly
	// below).
	r.clockNs += uint64(float64(n) * r.smp.est)
	if r.ctxNs > 0 && r.clockNs >= r.nextCtx {
		r.Sys.TLB(0).Flush()
		r.nextCtx = r.clockNs + r.ctxNs
	}
	if r.daemon != nil && r.clockNs >= r.nextTick {
		tickKernelBefore := r.Sys.KernelNs()
		r.daemon.Tick(r.clockNs)
		r.nextTick = r.clockNs + r.daemon.PeriodNs()
		r.obsTickKernel.Observe(r.Sys.KernelNs() - tickKernelBefore)
	}
	// All kernel time the batch triggered (faults during translation,
	// sink observes, the tick) stalls the core, exactly as in exact mode.
	r.clockNs += r.Sys.KernelNs() - kernelBefore
	if len(ff.cols.OpEnds) > 0 {
		// Op latencies are measured inside detailed windows only; resync
		// the op origin so a window's first completed op is not charged
		// for the functional stretch before it.
		r.opStart = r.clockNs
	}
	return n
}
